"""Graph500-style RMAT edge generator (paper Sec. V.A, ref. [2]).

The recursive-matrix (RMAT) generator places each edge by recursively
descending a 2^s x 2^s adjacency matrix, choosing one quadrant per level
with probabilities (a, b, c, d).  Graph500 uses a=0.57, b=c=0.19, d=0.05,
which yields the skewed (power-law-ish) degree distributions of social
and web graphs — the same distributions that stress per-vertex probe
distance in dynamic graph stores.

The implementation is fully vectorised: all ``scale`` levels are drawn
for the whole edge batch at once (two uniform arrays per level), per the
HPC-Python guides' "no per-item Python loops" rule.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError

#: Graph500 default quadrant probabilities.
GRAPH500_A = 0.57
GRAPH500_B = 0.19
GRAPH500_C = 0.19
GRAPH500_D = 0.05


def rmat_edges(
    scale: int,
    n_edges: int,
    a: float = GRAPH500_A,
    b: float = GRAPH500_B,
    c: float = GRAPH500_C,
    d: float = GRAPH500_D,
    seed: int | np.random.Generator = 0,
    noise: float = 0.1,
) -> np.ndarray:
    """Generate ``n_edges`` RMAT edges over ``2**scale`` vertices.

    Parameters
    ----------
    scale:
        log2 of the vertex-id space.
    n_edges:
        Number of edges to draw (duplicates and self-loops possible, as
        in Graph500; callers dedup if their experiment requires it).
    a, b, c, d:
        Quadrant probabilities; must be positive and sum to 1.
    seed:
        Integer seed or an existing :class:`numpy.random.Generator`.
    noise:
        Per-level multiplicative jitter on (a, b, c, d) — Graph500's
        "smoothing" that avoids exactly self-similar artefacts.  0 turns
        it off.

    Returns
    -------
    numpy.ndarray
        ``(n_edges, 2)`` int64 array of (src, dst) pairs.
    """
    if scale <= 0 or scale > 62:
        raise WorkloadError(f"scale must be in [1, 62], got {scale}")
    if n_edges < 0:
        raise WorkloadError("n_edges must be non-negative")
    probs = np.array([a, b, c, d], dtype=np.float64)
    if (probs <= 0).any() or abs(probs.sum() - 1.0) > 1e-9:
        raise WorkloadError("quadrant probabilities must be positive and sum to 1")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)

    src = np.zeros(n_edges, dtype=np.int64)
    dst = np.zeros(n_edges, dtype=np.int64)
    for level in range(scale):
        if noise:
            jitter = 1.0 + noise * (rng.random(4) - 0.5)
            pa, pb, pc, pd = probs * jitter / (probs * jitter).sum()
        else:
            pa, pb, pc, pd = probs
        u = rng.random(n_edges)
        # Quadrant choice: src bit set for quadrants c|d, dst bit for b|d.
        src_bit = u >= (pa + pb)
        dst_bit = (u >= pa) & (u < pa + pb) | (u >= pa + pb + pc)
        bit = np.int64(1) << np.int64(scale - 1 - level)
        src += bit * src_bit
        dst += bit * dst_bit
    return np.column_stack([src, dst])


def rmat_edges_unique(
    scale: int,
    n_edges: int,
    seed: int | np.random.Generator = 0,
    max_rounds: int = 64,
    **kwargs,
) -> np.ndarray:
    """Like :func:`rmat_edges` but deduplicated and self-loop-free.

    Draws in rounds until ``n_edges`` distinct edges are collected (or
    ``max_rounds`` is hit, at which point it raises — RMAT at reasonable
    densities converges in a handful of rounds).  Order is the order of
    first appearance, so streaming the result reproduces a natural
    "updates arrive once" dynamic-graph workload.
    """
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    shift = np.int64(scale)
    seen_keys = np.empty(0, dtype=np.int64)
    collected: list[np.ndarray] = []
    collected_n = 0
    for _ in range(max_rounds):
        need = n_edges - collected_n
        if need <= 0:
            break
        draw = rmat_edges(scale, max(need * 2, 1024), seed=rng, **kwargs)
        draw = draw[draw[:, 0] != draw[:, 1]]
        keys = (draw[:, 0] << shift) | draw[:, 1]
        # First-occurrence dedup within the draw, preserving arrival order.
        _, first_idx = np.unique(keys, return_index=True)
        first_idx.sort()
        keys = keys[first_idx]
        draw = draw[first_idx]
        # Drop edges already collected in earlier rounds.
        fresh = ~np.isin(keys, seen_keys, assume_unique=True)
        draw = draw[fresh][:need]
        keys = keys[fresh][:need]
        if draw.shape[0]:
            collected.append(draw)
            collected_n += draw.shape[0]
            seen_keys = np.concatenate([seen_keys, keys])
            seen_keys.sort()
    else:
        raise WorkloadError(
            f"could not draw {n_edges} unique edges at scale {scale}; "
            "the requested density is too close to the complete graph"
        )
    if not collected:
        return np.empty((0, 2), dtype=np.int64)
    return np.concatenate(collected)[:n_edges]


def degree_skew(edges: np.ndarray) -> float:
    """Max-degree / mean-degree of the source column (skew diagnostic)."""
    if edges.shape[0] == 0:
        return 0.0
    counts = np.bincount(edges[:, 0] - edges[:, 0].min())
    counts = counts[counts > 0]
    return float(counts.max() / counts.mean())
