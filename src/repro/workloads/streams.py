"""Edge-stream batching for dynamic-graph experiments.

The paper's evaluation drives every experiment as a sequence of fixed-size
update batches (1M edges per batch at full scale): load a batch, then
optionally run analytics, repeat.  :class:`EdgeStream` packages an edge
array into that shape and also produces the deletion streams of Figs.
14-16 (graph loaded fully, then deleted batch by batch until empty).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import WorkloadError


def validate_edges(edges: np.ndarray, *, max_vertex: int | None = None,
                   where: str = "edges") -> np.ndarray:
    """Validate an edge array and return it as contiguous int64 ``(n, 2)``.

    Rejects — with a typed :class:`~repro.errors.WorkloadError` naming
    the first offending row — the malformed inputs that real files and
    buggy generators produce: NaN/inf ids, fractional floats, negative
    ids, and (when ``max_vertex`` is given) ids at or beyond the declared
    vertex-space bound.  Silent coercion of any of these would plant
    ghost vertices in the store that only an fsck would ever notice.

    All checks are vectorised; on clean int64 input the cost is two
    comparisons over the array and no copy.
    """
    arr = np.asarray(edges)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise WorkloadError(
            f"{where}: edge array must have shape (n, 2), got {arr.shape}")
    if arr.dtype.kind == "f":
        finite = np.isfinite(arr)
        if not finite.all():
            row = int(np.flatnonzero(~finite.all(axis=1))[0])
            raise WorkloadError(
                f"{where}: non-finite vertex id at row {row}: "
                f"{arr[row].tolist()}")
        whole = arr == np.floor(arr)
        if not whole.all():
            row = int(np.flatnonzero(~whole.all(axis=1))[0])
            raise WorkloadError(
                f"{where}: fractional vertex id at row {row}: "
                f"{arr[row].tolist()}")
        arr = arr.astype(np.int64)
    elif arr.dtype.kind in "iu":
        arr = arr.astype(np.int64, copy=False)
    else:
        raise WorkloadError(
            f"{where}: vertex ids must be numeric, got dtype {arr.dtype}")
    neg = arr < 0
    if neg.any():
        row = int(np.flatnonzero(neg.any(axis=1))[0])
        raise WorkloadError(
            f"{where}: negative vertex id at row {row}: {arr[row].tolist()}")
    if max_vertex is not None:
        over = arr >= max_vertex
        if over.any():
            row = int(np.flatnonzero(over.any(axis=1))[0])
            raise WorkloadError(
                f"{where}: vertex id at row {row} outside [0, {max_vertex}): "
                f"{arr[row].tolist()}")
    return np.ascontiguousarray(arr)


def batch_view(edges: np.ndarray, batch_size: int) -> list[np.ndarray]:
    """Split an edge array into consecutive batch views (no copies)."""
    if batch_size <= 0:
        raise WorkloadError("batch_size must be positive")
    return [edges[i : i + batch_size] for i in range(0, edges.shape[0], batch_size)]


class EdgeStream:
    """A replayable stream of update batches over a fixed edge list.

    Parameters
    ----------
    edges:
        ``(n, 2)`` int64 edge array (first-appearance order is the
        arrival order).
    batch_size:
        Edges per update batch.
    max_vertex:
        Optional exclusive upper bound on vertex ids; out-of-range ids
        raise :class:`~repro.errors.WorkloadError` at construction.

    Construction validates the whole array up front (NaN, fractional,
    negative, out-of-range ids) — a stream that fails mid-replay would
    leave the store half-loaded.
    """

    def __init__(self, edges: np.ndarray, batch_size: int, *,
                 max_vertex: int | None = None):
        edges = validate_edges(edges, max_vertex=max_vertex)
        if batch_size <= 0:
            raise WorkloadError("batch_size must be positive")
        self.edges = edges
        self.batch_size = batch_size
        self.max_vertex = max_vertex

    @property
    def n_edges(self) -> int:
        return self.edges.shape[0]

    @property
    def n_batches(self) -> int:
        return -(-self.n_edges // self.batch_size)

    def insert_batches(self) -> Iterator[np.ndarray]:
        """Yield batches in arrival order (the insertion experiments)."""
        for i in range(0, self.n_edges, self.batch_size):
            yield self.edges[i : i + self.batch_size]

    def delete_batches(self, seed: int | None = 0) -> Iterator[np.ndarray]:
        """Yield batches of the same edges for deletion.

        With ``seed`` an int, the deletion order is a deterministic
        shuffle (deletions in practice do not arrive in insertion order);
        ``None`` keeps insertion order.
        """
        if seed is None:
            order = np.arange(self.n_edges)
        else:
            order = np.random.default_rng(seed).permutation(self.n_edges)
        shuffled = self.edges[order]
        for i in range(0, self.n_edges, self.batch_size):
            yield shuffled[i : i + self.batch_size]

    def prefix(self, n: int) -> "EdgeStream":
        """Stream over only the first ``n`` edges (same batch size)."""
        return EdgeStream(self.edges[:n], self.batch_size,
                          max_vertex=self.max_vertex)


def interleaved_schedule(
    n_batches: int, updates: int, analytics: int
) -> list[tuple[int, int]]:
    """Schedule for the update/analytics-ratio experiment (Fig. 19).

    The insertion process is intercepted ``updates`` times, evenly spaced
    across the batch sequence; each interception runs ``analytics``
    analytics passes.  Returns ``(after_batch_index, n_analytics)`` pairs;
    e.g. ratio 4:7 over 32 batches -> intercept after every 8th batch and
    run 7 analytics each time.
    """
    if n_batches <= 0 or updates <= 0 or analytics <= 0:
        raise WorkloadError("n_batches, updates and analytics must be positive")
    updates = min(updates, n_batches)
    stride = n_batches // updates
    return [(stride * (k + 1) - 1, analytics) for k in range(updates)]


def symmetrize(edges: np.ndarray) -> np.ndarray:
    """Interleave each edge with its reverse: ``(u, v)`` then ``(v, u)``.

    Undirected-graph algorithms (weakly-connected components) require a
    symmetrised stream so a vertex's own out-edges cover all its incident
    edges — the ingestion convention for symmetric UF-collection
    matrices.  Interleaving keeps both directions in the same update
    batch, so a batch never leaves the store half-symmetric.
    """
    edges = np.asarray(edges, dtype=np.int64)
    out = np.empty((edges.shape[0] * 2, 2), dtype=np.int64)
    out[0::2] = edges
    out[1::2] = edges[:, ::-1]
    return out


def highest_degree_roots(edges: np.ndarray, k: int = 20) -> np.ndarray:
    """The ``k`` highest-out-degree sources (Fig. 19 pre-collects 20).

    Ties break toward smaller vertex id, deterministically.
    """
    if edges.shape[0] == 0:
        raise WorkloadError("cannot pick roots from an empty edge list")
    srcs, counts = np.unique(edges[:, 0], return_counts=True)
    order = np.lexsort((srcs, -counts))
    return srcs[order[:k]]
