"""Edge-stream batching for dynamic-graph experiments.

The paper's evaluation drives every experiment as a sequence of fixed-size
update batches (1M edges per batch at full scale): load a batch, then
optionally run analytics, repeat.  :class:`EdgeStream` packages an edge
array into that shape and also produces the deletion streams of Figs.
14-16 (graph loaded fully, then deleted batch by batch until empty).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import WorkloadError


def batch_view(edges: np.ndarray, batch_size: int) -> list[np.ndarray]:
    """Split an edge array into consecutive batch views (no copies)."""
    if batch_size <= 0:
        raise WorkloadError("batch_size must be positive")
    return [edges[i : i + batch_size] for i in range(0, edges.shape[0], batch_size)]


class EdgeStream:
    """A replayable stream of update batches over a fixed edge list.

    Parameters
    ----------
    edges:
        ``(n, 2)`` int64 edge array (first-appearance order is the
        arrival order).
    batch_size:
        Edges per update batch.
    """

    def __init__(self, edges: np.ndarray, batch_size: int):
        edges = np.asarray(edges, dtype=np.int64)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise WorkloadError("edges must have shape (n, 2)")
        if batch_size <= 0:
            raise WorkloadError("batch_size must be positive")
        self.edges = edges
        self.batch_size = batch_size

    @property
    def n_edges(self) -> int:
        return self.edges.shape[0]

    @property
    def n_batches(self) -> int:
        return -(-self.n_edges // self.batch_size)

    def insert_batches(self) -> Iterator[np.ndarray]:
        """Yield batches in arrival order (the insertion experiments)."""
        for i in range(0, self.n_edges, self.batch_size):
            yield self.edges[i : i + self.batch_size]

    def delete_batches(self, seed: int | None = 0) -> Iterator[np.ndarray]:
        """Yield batches of the same edges for deletion.

        With ``seed`` an int, the deletion order is a deterministic
        shuffle (deletions in practice do not arrive in insertion order);
        ``None`` keeps insertion order.
        """
        if seed is None:
            order = np.arange(self.n_edges)
        else:
            order = np.random.default_rng(seed).permutation(self.n_edges)
        shuffled = self.edges[order]
        for i in range(0, self.n_edges, self.batch_size):
            yield shuffled[i : i + self.batch_size]

    def prefix(self, n: int) -> "EdgeStream":
        """Stream over only the first ``n`` edges (same batch size)."""
        return EdgeStream(self.edges[:n], self.batch_size)


def interleaved_schedule(
    n_batches: int, updates: int, analytics: int
) -> list[tuple[int, int]]:
    """Schedule for the update/analytics-ratio experiment (Fig. 19).

    The insertion process is intercepted ``updates`` times, evenly spaced
    across the batch sequence; each interception runs ``analytics``
    analytics passes.  Returns ``(after_batch_index, n_analytics)`` pairs;
    e.g. ratio 4:7 over 32 batches -> intercept after every 8th batch and
    run 7 analytics each time.
    """
    if n_batches <= 0 or updates <= 0 or analytics <= 0:
        raise WorkloadError("n_batches, updates and analytics must be positive")
    updates = min(updates, n_batches)
    stride = n_batches // updates
    return [(stride * (k + 1) - 1, analytics) for k in range(updates)]


def symmetrize(edges: np.ndarray) -> np.ndarray:
    """Interleave each edge with its reverse: ``(u, v)`` then ``(v, u)``.

    Undirected-graph algorithms (weakly-connected components) require a
    symmetrised stream so a vertex's own out-edges cover all its incident
    edges — the ingestion convention for symmetric UF-collection
    matrices.  Interleaving keeps both directions in the same update
    batch, so a batch never leaves the store half-symmetric.
    """
    edges = np.asarray(edges, dtype=np.int64)
    out = np.empty((edges.shape[0] * 2, 2), dtype=np.int64)
    out[0::2] = edges
    out[1::2] = edges[:, ::-1]
    return out


def highest_degree_roots(edges: np.ndarray, k: int = 20) -> np.ndarray:
    """The ``k`` highest-out-degree sources (Fig. 19 pre-collects 20).

    Ties break toward smaller vertex id, deterministically.
    """
    if edges.shape[0] == 0:
        raise WorkloadError("cannot pick roots from an empty edge list")
    srcs, counts = np.unique(edges[:, 0], return_counts=True)
    order = np.lexsort((srcs, -counts))
    return srcs[order[:k]]
