"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import GTConfig, StingerConfig


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def small_config() -> GTConfig:
    """A tiny geometry that forces branch-outs quickly."""
    return GTConfig(pagewidth=16, subblock=4, workblock=2, initial_vertices=2,
                    cal_group_width=8, cal_block_size=8)


@pytest.fixture
def paper_config() -> GTConfig:
    """The paper's default geometry (PW 64 / SB 8 / WB 4)."""
    return GTConfig()


@pytest.fixture
def stinger_config() -> StingerConfig:
    return StingerConfig(edgeblock_size=4, initial_vertices=2)


@pytest.fixture
def random_edges(rng) -> np.ndarray:
    """A duplicate-bearing random edge batch over a small id space."""
    return np.column_stack(
        [rng.integers(0, 60, 3000), rng.integers(0, 200, 3000)]
    ).astype(np.int64)
