"""A trivially-correct reference dynamic graph (the test oracle).

Dict-of-dicts: ``adj[src][dst] = weight``.  Used as the model in
hypothesis stateful tests and as the expected state in randomized
integration tests — if GraphTinker or STINGER ever disagree with this,
the data structure is wrong.
"""

from __future__ import annotations

import numpy as np


class ReferenceGraph:
    """Minimal correct dynamic directed multigraph-without-duplicates."""

    def __init__(self) -> None:
        self.adj: dict[int, dict[int, float]] = {}

    def insert_edge(self, src: int, dst: int, weight: float = 1.0) -> bool:
        nbrs = self.adj.setdefault(int(src), {})
        is_new = int(dst) not in nbrs
        nbrs[int(dst)] = float(weight)
        return is_new

    def delete_edge(self, src: int, dst: int) -> bool:
        nbrs = self.adj.get(int(src))
        if not nbrs or int(dst) not in nbrs:
            return False
        del nbrs[int(dst)]
        return True

    def has_edge(self, src: int, dst: int) -> bool:
        return int(dst) in self.adj.get(int(src), {})

    def edge_weight(self, src: int, dst: int) -> float | None:
        return self.adj.get(int(src), {}).get(int(dst))

    def degree(self, src: int) -> int:
        return len(self.adj.get(int(src), {}))

    @property
    def n_edges(self) -> int:
        return sum(len(n) for n in self.adj.values())

    def edge_set(self) -> set[tuple[int, int]]:
        return {(s, d) for s, nbrs in self.adj.items() for d in nbrs}

    def weighted_edges(self) -> dict[tuple[int, int], float]:
        return {
            (s, d): w for s, nbrs in self.adj.items() for d, w in nbrs.items()
        }

    def neighbors(self, src: int) -> set[int]:
        return set(self.adj.get(int(src), {}))


def reference_bfs(ref: ReferenceGraph, root: int) -> dict[int, float]:
    """Hop distances from ``root`` over the directed reference graph."""
    dist = {int(root): 0.0}
    frontier = [int(root)]
    while frontier:
        nxt = []
        for v in frontier:
            for d in ref.adj.get(v, {}):
                if d not in dist:
                    dist[d] = dist[v] + 1.0
                    nxt.append(d)
        frontier = nxt
    return dist


def reference_sssp(ref: ReferenceGraph, root: int) -> dict[int, float]:
    """Dijkstra distances from ``root`` (non-negative weights).

    Distances are accumulated root-outward (``dist[u] + w``), the same
    left-to-right float summation order as the engine's Bellman-Ford
    relaxations, so agreement is exact, not approximate.
    """
    import heapq

    dist: dict[int, float] = {}
    heap = [(0.0, int(root))]
    while heap:
        d, v = heapq.heappop(heap)
        if v in dist:
            continue
        dist[v] = d
        for nbr, w in ref.adj.get(v, {}).items():
            if nbr not in dist:
                heapq.heappush(heap, (d + w, nbr))
    return dist


def reference_cc(ref: ReferenceGraph) -> dict[int, int]:
    """Min-id weakly-connected component labels (union-find).

    Every vertex appearing as an endpoint gets the smallest vertex id of
    its undirected component; other ids are absent (label = own id).
    """
    parent: dict[int, int] = {}

    def find(v: int) -> int:
        while parent[v] != v:
            parent[v] = parent[parent[v]]
            v = parent[v]
        return v

    def union(a: int, b: int) -> None:
        for v in (a, b):
            parent.setdefault(v, v)
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[max(ra, rb)] = min(ra, rb)

    for s, d in ref.edge_set():
        union(s, d)
    return {v: find(v) for v in parent}


def assert_store_matches(store, ref: ReferenceGraph) -> None:
    """Assert a store's full edge content equals the reference's."""
    assert store.n_edges == ref.n_edges
    got = {}
    for s, d, w in store.edges():
        assert (s, d) not in got, f"store yielded duplicate edge {(s, d)}"
        got[(s, d)] = w
    expected = ref.weighted_edges()
    assert set(got) == set(expected)
    for key, w in expected.items():
        assert abs(got[key] - w) < 1e-12, key
