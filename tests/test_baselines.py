"""Tests for the Sec. II baselines: adjacency matrix and CSR-rebuild."""

import numpy as np
import pytest

from repro.baselines import AdjacencyMatrixStore, CSRRebuildStore
from repro.errors import CapacityError, VertexNotFoundError
from tests.reference import ReferenceGraph, assert_store_matches


class TestAdjacencyMatrix:
    def test_basic_operations(self):
        m = AdjacencyMatrixStore(capacity=64)
        assert m.insert_edge(1, 2, 3.0)
        assert not m.insert_edge(1, 2, 5.0)
        assert m.edge_weight(1, 2) == 5.0
        assert m.delete_edge(1, 2)
        assert not m.has_edge(1, 2)
        m.check_invariants()

    def test_o1_insert_accounting(self):
        m = AdjacencyMatrixStore(capacity=64)
        m.insert_edge(3, 4)
        assert m.stats.random_block_reads == 1  # exactly one cell touch

    def test_capacity_hard_limit(self):
        m = AdjacencyMatrixStore(capacity=8)
        with pytest.raises(CapacityError):
            m.insert_edge(8, 0)

    def test_negative_ids_rejected(self):
        m = AdjacencyMatrixStore(capacity=8)
        with pytest.raises(ValueError):
            m.insert_edge(-1, 0)

    def test_retrieval_scans_quadratically(self):
        m = AdjacencyMatrixStore(capacity=128)
        m.insert_edge(99, 99)  # one edge, but a 100x100 used sub-matrix
        m.stats.reset()
        m.analytics_edges()
        assert m.stats.cells_scanned == 100 * 100

    def test_matches_reference(self, rng):
        m = AdjacencyMatrixStore(capacity=40)
        ref = ReferenceGraph()
        for _ in range(1500):
            s, d = int(rng.integers(0, 40)), int(rng.integers(0, 40))
            if rng.random() < 0.7:
                w = float(rng.random())
                assert m.insert_edge(s, d, w) == ref.insert_edge(s, d, w)
            else:
                assert m.delete_edge(s, d) == ref.delete_edge(s, d)
        m.check_invariants()
        assert_store_matches(m, ref)

    def test_neighbors(self):
        m = AdjacencyMatrixStore(capacity=16)
        m.insert_edge(2, 5, 1.5)
        m.insert_edge(2, 9, 2.5)
        dst, w = m.neighbors(2)
        assert dst.tolist() == [5, 9]
        assert w.tolist() == [1.5, 2.5]
        with pytest.raises(VertexNotFoundError):
            m.neighbors(15)


class TestCSRRebuild:
    def test_basic_operations(self):
        c = CSRRebuildStore()
        assert c.insert_edge(1, 2, 3.0)
        assert not c.insert_edge(1, 2, 5.0)
        assert c.edge_weight(1, 2) == 5.0
        assert c.delete_edge(1, 2)
        assert c.n_edges == 0
        c.check_invariants()

    def test_rebuild_only_when_dirty(self):
        c = CSRRebuildStore()
        c.insert_batch(np.array([[0, 1], [1, 2]]))
        c.analytics_edges()
        assert c.rebuilds == 1
        c.analytics_edges()
        assert c.rebuilds == 1  # clean: no second rebuild
        c.insert_edge(2, 3)
        c.analytics_edges()
        assert c.rebuilds == 2

    def test_csr_slices_sorted_per_source(self):
        c = CSRRebuildStore()
        c.insert_batch(np.array([[5, 9], [0, 3], [5, 1], [0, 7], [5, 4]]))
        src, dst, _ = c.analytics_edges()
        assert src.tolist() == sorted(src.tolist())
        dst5, _ = c.neighbors(5)
        assert dst5.tolist() == sorted(dst5.tolist())

    def test_rebuild_cost_scales_with_edges(self):
        small, big = CSRRebuildStore(), CSRRebuildStore()
        small.insert_batch(np.column_stack([np.arange(100), np.arange(100) + 1]))
        big.insert_batch(np.column_stack([np.arange(10000), np.arange(10000) + 1]))
        small.stats.reset(); big.stats.reset()
        small.rebuild(); big.rebuild()
        assert big.stats.cells_scanned > 50 * small.stats.cells_scanned

    def test_matches_reference(self, rng):
        c = CSRRebuildStore()
        ref = ReferenceGraph()
        for _ in range(2000):
            s, d = int(rng.integers(0, 30)), int(rng.integers(0, 90))
            if rng.random() < 0.7:
                w = float(rng.random())
                assert c.insert_edge(s, d, w) == ref.insert_edge(s, d, w)
            else:
                assert c.delete_edge(s, d) == ref.delete_edge(s, d)
        c.check_invariants()
        assert_store_matches(c, ref)

    def test_degree_and_unknown_vertex(self):
        c = CSRRebuildStore()
        c.insert_batch(np.array([[3, 1], [3, 2]]))
        assert c.degree(3) == 2
        assert c.degree(99) == 0
        with pytest.raises(VertexNotFoundError):
            c.neighbors(99)

    def test_empty_store(self):
        c = CSRRebuildStore()
        src, dst, w = c.analytics_edges()
        assert src.size == 0
        c.check_invariants()


class TestEngineOnBaselines:
    """The engine must run unmodified on any conforming store."""

    def test_bfs_identical_across_all_four_stores(self, rng):
        import networkx as nx

        from repro import GraphTinker, GTConfig, StingerConfig
        from repro.engine import BFS, HybridEngine
        from repro.stinger import Stinger

        edges = np.column_stack([rng.integers(0, 60, 1200),
                                 rng.integers(0, 60, 1200)])
        edges = edges[edges[:, 0] != edges[:, 1]]
        root = int(edges[0, 0])
        results = {}
        stores = {
            "gt": GraphTinker(GTConfig(pagewidth=16, subblock=4, workblock=2)),
            "stinger": Stinger(StingerConfig(edgeblock_size=4)),
            "matrix": AdjacencyMatrixStore(capacity=64),
            "csr": CSRRebuildStore(),
        }
        for name, store in stores.items():
            store.insert_batch(edges)
            engine = HybridEngine(store, BFS(), policy="full")
            engine.reset(roots=[root])
            engine.compute()
            results[name] = engine.values
        G = nx.DiGraph(); G.add_edges_from(edges.tolist())
        expected = nx.single_source_shortest_path_length(G, root)
        for name, values in results.items():
            for v, level in expected.items():
                assert values[v] == level, (name, v)
