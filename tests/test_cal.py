"""Unit tests for the Coarse Adjacency List EdgeblockArray."""

import numpy as np
import pytest

from repro.core.cal import CAL_INVALID, CoarseAdjacencyList
from repro.core.config import GTConfig


def make(group_width=4, block_size=4):
    return CoarseAdjacencyList(
        GTConfig(cal_group_width=group_width, cal_block_size=block_size)
    )


class TestGrouping:
    def test_group_of(self):
        cal = make(group_width=4)
        assert cal.group_of(0) == 0
        assert cal.group_of(3) == 0
        assert cal.group_of(4) == 1
        assert cal.group_of(1023) == 255

    def test_groups_created_on_demand(self):
        cal = make(group_width=4)
        cal.append(9, 1, 1.0)  # group 2
        assert cal.n_groups == 3

    def test_sources_in_same_group_share_blocks(self):
        """The 'coarse' in CAL: several sources pack into one block."""
        cal = make(group_width=4, block_size=8)
        for src in range(4):
            cal.append(src, src * 10, 1.0)
        assert cal.n_blocks == 1


class TestAppend:
    def test_append_returns_address(self):
        cal = make()
        block, slot = cal.append(0, 7, 2.0)
        assert cal.read_slot(block, slot) == (0, 7, 2.0)

    def test_chain_extension_when_block_full(self):
        cal = make(group_width=4, block_size=2)
        addrs = [cal.append(0, d, 1.0) for d in range(5)]
        blocks = {b for b, _ in addrs}
        assert len(blocks) == 3  # ceil(5/2)
        assert cal.n_edges == 5

    def test_groups_have_independent_chains(self):
        cal = make(group_width=2, block_size=2)
        cal.append(0, 1, 1.0)   # group 0
        cal.append(5, 1, 1.0)   # group 2
        cal.append(1, 2, 1.0)   # group 0 again
        src, dst, w = cal.stream_edges()
        # stream is group-ordered: group 0's two edges first
        assert src.tolist() == [0, 1, 5]


class TestUpdateInvalidate:
    def test_update_weight(self):
        cal = make()
        b, s = cal.append(0, 7, 1.0)
        cal.update_weight(b, s, 9.0)
        assert cal.read_slot(b, s)[2] == 9.0

    def test_invalidate(self):
        cal = make()
        b, s = cal.append(0, 7, 1.0)
        cal.invalidate(b, s)
        assert cal.n_edges == 0
        assert cal.read_slot(b, s)[0] == CAL_INVALID

    def test_invalidate_idempotent(self):
        cal = make()
        b, s = cal.append(0, 7, 1.0)
        cal.invalidate(b, s)
        cal.invalidate(b, s)
        assert cal.n_edges == 0

    def test_maintenance_is_o1_no_traversal(self):
        """CAL updates never traverse edges: no block *reads* counted."""
        cal = make(block_size=4)
        for d in range(100):
            cal.append(0, d, 1.0)
        assert cal.stats.seq_block_reads == 0
        assert cal.stats.random_block_reads == 0
        assert cal.stats.cal_updates == 100


class TestStreaming:
    def test_stream_edges_roundtrip(self):
        cal = make(group_width=8, block_size=4)
        expected = []
        for i in range(50):
            src, dst, w = i % 20, i * 3, float(i)
            cal.append(src, dst, w)
            expected.append((src, dst, w))
        src, dst, w = cal.stream_edges()
        got = sorted(zip(src.tolist(), dst.tolist(), w.tolist()))
        assert got == sorted(expected)

    def test_stream_skips_invalidated(self):
        cal = make()
        addrs = [cal.append(0, d, 1.0) for d in range(10)]
        for b, s in addrs[::2]:
            cal.invalidate(b, s)
        src, dst, _ = cal.stream_edges()
        assert sorted(dst.tolist()) == list(range(1, 10, 2))

    def test_stream_counts_sequential_reads(self):
        cal = make(block_size=4)
        for d in range(20):
            cal.append(0, d, 1.0)
        cal.stats.reset()
        cal.stream_edges()
        assert cal.stats.seq_block_reads == cal.n_blocks
        assert cal.stats.random_block_reads == 0

    def test_stream_empty(self):
        cal = make()
        src, dst, w = cal.stream_edges()
        assert src.size == dst.size == w.size == 0

    def test_stream_blocks_yield_views_of_live_slots(self):
        cal = make(block_size=4)
        cal.append(0, 1, 1.0)
        cal.append(0, 2, 2.0)
        chunks = list(cal.stream_blocks())
        assert len(chunks) == 1
        assert chunks[0]["dst"].tolist() == [1, 2]


class TestCompactDelete:
    def test_delete_tail_slot_shrinks(self):
        cal = make(group_width=4, block_size=4)
        addrs = [cal.append(0, d, 1.0) for d in range(3)]
        assert cal.compact_delete(*addrs[-1]) is None  # tail: no move
        assert cal.n_edges == 2

    def test_delete_inner_slot_moves_tail(self):
        cal = make(group_width=4, block_size=4)
        addrs = [cal.append(0, d, float(d)) for d in range(3)]
        moved = cal.compact_delete(*addrs[0])
        assert moved is not None
        src, dst, old_block, old_slot = moved
        assert (src, dst) == (0, 2)
        assert (old_block, old_slot) == addrs[2]
        # the moved copy now lives at the deleted slot
        assert cal.read_slot(*addrs[0]) == (0, 2, 2.0)

    def test_emptied_tail_block_freed_and_unlinked(self):
        cal = make(group_width=4, block_size=2)
        addrs = [cal.append(0, d, 1.0) for d in range(4)]  # two blocks
        blocks_before = cal.n_blocks
        cal.compact_delete(*addrs[3])
        cal.compact_delete(*addrs[2])
        assert cal.n_blocks == blocks_before - 1
        # chain still streams the surviving copies
        _, dst, _ = cal.stream_edges()
        assert sorted(dst.tolist()) == [0, 1]

    def test_group_fully_emptied(self):
        cal = make(group_width=4, block_size=2)
        addrs = [cal.append(0, d, 1.0) for d in range(3)]
        for addr in reversed(addrs):
            cal.compact_delete(*addr)
        assert cal.n_edges == 0
        assert cal.stream_edges()[0].size == 0
        # the group accepts fresh appends afterwards
        cal.append(0, 9, 1.0)
        assert cal.n_edges == 1

    def test_idempotent_on_invalid_slot(self):
        cal = make()
        addr = cal.append(0, 1, 1.0)
        cal.compact_delete(*addr)
        assert cal.compact_delete(*addr) is None

    def test_dense_chain_invariant_under_churn(self, rng):
        from repro.core.cal import CAL_INVALID

        cal = make(group_width=4, block_size=4)
        live = {}
        for i in range(2000):
            if rng.random() < 0.6 or not live:
                src, dst = int(rng.integers(0, 12)), i
                live[(src, dst)] = cal.append(src, dst, 1.0)
                # appends may invalidate stored addresses of later moves,
                # so refresh nothing: moves only happen on delete below.
            else:
                key = next(iter(live))
                addr = live.pop(key)
                moved = cal.compact_delete(*addr)
                if moved is not None:
                    m_src, m_dst, *_ = moved
                    live[(m_src, m_dst)] = addr
        for g in range(cal.n_groups):
            b = cal._group_head[g]
            while b >= 0:
                valid = cal.pool.row(b)["src"] != CAL_INVALID
                if b == cal._group_tail[g]:
                    fill = cal._tail_fill[g]
                    assert valid[:fill].all() and not valid[fill:].any()
                else:
                    assert valid.all()
                b = cal._next[b]


class TestFillFraction:
    def test_full_blocks(self):
        cal = make(block_size=4)
        for d in range(8):
            cal.append(0, d, 1.0)
        assert cal.fill_fraction() == 1.0

    def test_after_invalidation(self):
        cal = make(block_size=4)
        addrs = [cal.append(0, d, 1.0) for d in range(4)]
        cal.invalidate(*addrs[0])
        assert cal.fill_fraction() == 0.75

    def test_empty_structure(self):
        assert make().fill_fraction() == 1.0
