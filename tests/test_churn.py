"""Tests for the churn workload generators."""

import numpy as np
import pytest

from repro import GraphTinker, GTConfig
from repro.errors import WorkloadError
from repro.workloads.churn import ChurnStep, apply_churn, churn_mix, sliding_window
from repro.workloads.rmat import rmat_edges_unique


@pytest.fixture(scope="module")
def unique_edges():
    return rmat_edges_unique(10, 4000, seed=6)


class TestSlidingWindow:
    def test_window_fills_before_deleting(self, unique_edges):
        steps = list(sliding_window(unique_edges[:1000], window=600, step=200))
        assert [s.n_deletes for s in steps[:3]] == [0, 0, 0]
        assert steps[3].n_deletes == 200  # window overflows at 800
        assert all(s.n_inserts == 200 for s in steps)

    def test_deletes_are_fifo(self, unique_edges):
        steps = list(sliding_window(unique_edges[:1000], window=400, step=200))
        # the first deletion batch expires the first-inserted edges
        first_deleting = next(s for s in steps if s.n_deletes)
        assert (first_deleting.deletes == unique_edges[:200]).all()

    def test_steady_state_live_size(self, unique_edges):
        gt = GraphTinker(GTConfig(pagewidth=16, subblock=4, workblock=2))
        sizes = []
        for step in sliding_window(unique_edges, window=800, step=200):
            if step.n_inserts:
                gt.insert_batch(step.inserts)
            if step.n_deletes:
                gt.delete_batch(step.deletes)
            sizes.append(gt.n_edges)
        # equilibrium: the live size settles at the window size
        assert sizes[-1] == 800
        assert max(sizes) <= 1000
        gt.check_invariants()

    @pytest.mark.parametrize("window,step", [(0, 1), (10, 0), (5, 10)])
    def test_bad_parameters(self, unique_edges, window, step):
        with pytest.raises(WorkloadError):
            list(sliding_window(unique_edges, window, step))

    def test_bad_shape(self):
        with pytest.raises(WorkloadError):
            list(sliding_window(np.zeros((3, 3), dtype=np.int64), 2, 1))


class TestChurnMix:
    def test_deterministic_per_seed(self, unique_edges):
        a = list(churn_mix(unique_edges, 5, 100, seed=3))
        b = list(churn_mix(unique_edges, 5, 100, seed=3))
        for sa, sb in zip(a, b):
            assert (sa.inserts == sb.inserts).all()
            assert (sa.deletes == sb.deletes).all()

    def test_delete_fraction_zero_never_deletes(self, unique_edges):
        steps = list(churn_mix(unique_edges, 6, 100, delete_fraction=0.0))
        assert all(s.n_deletes == 0 for s in steps)

    def test_deletes_only_live_edges(self, unique_edges):
        """Every delete targets an edge that is live at that moment."""
        gt = GraphTinker(GTConfig(pagewidth=16, subblock=4, workblock=2))
        for step in churn_mix(unique_edges, 12, 150, delete_fraction=0.6, seed=1):
            gt.insert_batch(step.inserts)
            if step.n_deletes:
                deleted = gt.delete_batch(step.deletes)
                assert deleted == step.n_deletes
        gt.check_invariants()

    def test_stops_when_stream_exhausted(self, unique_edges):
        steps = list(churn_mix(unique_edges[:300], 100, 100))
        assert len(steps) == 3

    def test_bad_parameters(self, unique_edges):
        with pytest.raises(WorkloadError):
            list(churn_mix(unique_edges, 0, 10))
        with pytest.raises(WorkloadError):
            list(churn_mix(unique_edges, 1, 10, delete_fraction=1.5))


class TestApplyChurn:
    def test_counts(self, unique_edges):
        gt = GraphTinker(GTConfig(pagewidth=16, subblock=4, workblock=2))
        ins, dels = apply_churn(gt, sliding_window(unique_edges[:1200], 400, 200))
        assert ins == 1200
        assert dels == 800
        assert gt.n_edges == 400
