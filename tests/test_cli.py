"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.workloads.io import read_edge_list


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_algorithm_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analytics", "--algorithm", "dijkstra"])


class TestDatasets:
    def test_lists_all_six(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("rmat_1m_10m", "hollywood_like", "kron_like"):
            assert name in out


class TestGenerate:
    def test_raw_rmat_roundtrip(self, tmp_path):
        path = tmp_path / "edges.txt"
        assert main(["generate", str(path), "--scale", "8",
                     "--edges", "500", "--seed", "3"]) == 0
        edges, _ = read_edge_list(path)
        assert edges.shape == (500, 2)
        assert edges.max() < 2**8

    def test_dataset_prefix(self, tmp_path):
        path = tmp_path / "ds.txt"
        assert main(["generate", str(path), "--dataset", "rmat_1m_10m",
                     "--edges", "300"]) == 0
        edges, _ = read_edge_list(path)
        assert edges.shape == (300, 2)


class TestLoad:
    def test_reports_all_requested_systems(self, capsys):
        assert main(["load", "--edges", "6000", "--batches", "2",
                     "--systems", "graphtinker", "stinger"]) == 0
        out = capsys.readouterr().out
        assert "graphtinker" in out and "stinger" in out
        assert "batch1" in out


class TestAnalytics:
    @pytest.mark.parametrize("algorithm", ["bfs", "sssp", "cc", "pagerank"])
    def test_every_algorithm_runs(self, capsys, algorithm):
        assert main(["analytics", "--edges", "5000",
                     "--algorithm", algorithm]) == 0
        out = capsys.readouterr().out
        assert "modeled throughput" in out
        assert "vertices with a result" in out

    def test_policies(self, capsys):
        for policy in ("hybrid", "full", "incremental"):
            assert main(["analytics", "--edges", "4000",
                         "--policy", policy]) == 0

    def test_stinger_backend(self, capsys):
        assert main(["analytics", "--edges", "4000",
                     "--system", "stinger"]) == 0


class TestProbe:
    def test_prints_both_structures(self, capsys):
        assert main(["probe", "--edges", "5000"]) == 0
        out = capsys.readouterr().out
        assert "GraphTinker" in out and "STINGER" in out


class TestFigures:
    def test_exports_csv(self, tmp_path, capsys):
        assert main(["figures", str(tmp_path), "--batches", "2"]) == 0
        files = list(tmp_path.glob("*.csv"))
        assert len(files) == 1
        assert "GT+CAL" in files[0].read_text()


class TestTrace:
    def test_prints_span_tree_and_cross_check(self, capsys):
        assert main(["trace", "--edges", "3000", "--batches", "2"]) == 0
        out = capsys.readouterr().out
        assert "trace" in out
        assert "insert_batch" in out
        assert "engine.compute" in out
        assert "span-delta cross-check" in out
        assert "WARNING" not in out

    def test_leaves_obs_disabled_afterwards(self):
        import repro.obs as obs

        assert main(["trace", "--edges", "2000", "--batches", "2"]) == 0
        assert not obs.is_enabled()

    def test_writes_exports(self, tmp_path, capsys):
        jsonl = tmp_path / "trace.jsonl"
        prom = tmp_path / "metrics.prom"
        assert main(["trace", "--edges", "2000", "--batches", "2",
                     "--jsonl", str(jsonl), "--prometheus", str(prom)]) == 0
        import repro.obs as obs

        roots = obs.trace_from_jsonl(jsonl.read_text())
        assert roots and roots[0].name == "trace"
        parsed = obs.parse_prometheus(prom.read_text())
        assert "gt_edges_inserted" in parsed

    def test_positional_dataset(self, capsys):
        assert main(["trace", "rmat_1m_10m", "--edges", "2000",
                     "--batches", "2"]) == 0


class TestLogLevel:
    @pytest.mark.parametrize("argv", [
        ["datasets"],
        ["load", "--edges", "2000", "--batches", "2",
         "--systems", "graphtinker"],
        ["analytics", "--edges", "2000"],
        ["probe", "--edges", "2000"],
        ["trace", "--edges", "2000", "--batches", "2"],
    ])
    def test_every_subcommand_accepts_log_level(self, capsys, argv):
        assert main([argv[0], "--log-level", "info", *argv[1:]]) == 0

    def test_generate_accepts_log_level(self, tmp_path):
        assert main(["generate", str(tmp_path / "e.txt"), "--scale", "8",
                     "--edges", "100", "--log-level", "debug"]) == 0

    def test_rejects_unknown_level(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["datasets", "--log-level", "loud"])

    def test_info_level_logs_to_stderr(self, capsys):
        assert main(["load", "--edges", "2000", "--batches", "2",
                     "--systems", "graphtinker", "--log-level", "info"]) == 0
        err = capsys.readouterr().err
        assert "insertion run finished" in err
        assert "repro.cli" in err
