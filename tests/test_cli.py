"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.workloads.io import read_edge_list


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_algorithm_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analytics", "--algorithm", "dijkstra"])


class TestDatasets:
    def test_lists_all_six(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("rmat_1m_10m", "hollywood_like", "kron_like"):
            assert name in out


class TestGenerate:
    def test_raw_rmat_roundtrip(self, tmp_path):
        path = tmp_path / "edges.txt"
        assert main(["generate", str(path), "--scale", "8",
                     "--edges", "500", "--seed", "3"]) == 0
        edges, _ = read_edge_list(path)
        assert edges.shape == (500, 2)
        assert edges.max() < 2**8

    def test_dataset_prefix(self, tmp_path):
        path = tmp_path / "ds.txt"
        assert main(["generate", str(path), "--dataset", "rmat_1m_10m",
                     "--edges", "300"]) == 0
        edges, _ = read_edge_list(path)
        assert edges.shape == (300, 2)


class TestLoad:
    def test_reports_all_requested_systems(self, capsys):
        assert main(["load", "--edges", "6000", "--batches", "2",
                     "--systems", "graphtinker", "stinger"]) == 0
        out = capsys.readouterr().out
        assert "graphtinker" in out and "stinger" in out
        assert "batch1" in out


class TestAnalytics:
    @pytest.mark.parametrize("algorithm", ["bfs", "sssp", "cc", "pagerank"])
    def test_every_algorithm_runs(self, capsys, algorithm):
        assert main(["analytics", "--edges", "5000",
                     "--algorithm", algorithm]) == 0
        out = capsys.readouterr().out
        assert "modeled throughput" in out
        assert "vertices with a result" in out

    def test_policies(self, capsys):
        for policy in ("hybrid", "full", "incremental"):
            assert main(["analytics", "--edges", "4000",
                         "--policy", policy]) == 0

    def test_stinger_backend(self, capsys):
        assert main(["analytics", "--edges", "4000",
                     "--system", "stinger"]) == 0


class TestProbe:
    def test_prints_both_structures(self, capsys):
        assert main(["probe", "--edges", "5000"]) == 0
        out = capsys.readouterr().out
        assert "GraphTinker" in out and "STINGER" in out


class TestFigures:
    def test_exports_csv(self, tmp_path, capsys):
        assert main(["figures", str(tmp_path), "--batches", "2"]) == 0
        files = list(tmp_path.glob("*.csv"))
        assert len(files) == 1
        assert "GT+CAL" in files[0].read_text()


class TestTrace:
    def test_prints_span_tree_and_cross_check(self, capsys):
        assert main(["trace", "--edges", "3000", "--batches", "2"]) == 0
        out = capsys.readouterr().out
        assert "trace" in out
        assert "insert_batch" in out
        assert "engine.compute" in out
        assert "span-delta cross-check" in out
        assert "WARNING" not in out

    def test_leaves_obs_disabled_afterwards(self):
        import repro.obs as obs

        assert main(["trace", "--edges", "2000", "--batches", "2"]) == 0
        assert not obs.is_enabled()

    def test_writes_exports(self, tmp_path, capsys):
        jsonl = tmp_path / "trace.jsonl"
        prom = tmp_path / "metrics.prom"
        assert main(["trace", "--edges", "2000", "--batches", "2",
                     "--jsonl", str(jsonl), "--prometheus", str(prom)]) == 0
        import repro.obs as obs

        roots = obs.trace_from_jsonl(jsonl.read_text())
        assert roots and roots[0].name == "trace"
        parsed = obs.parse_prometheus(prom.read_text())
        assert "gt_edges_inserted" in parsed

    def test_positional_dataset(self, capsys):
        assert main(["trace", "rmat_1m_10m", "--edges", "2000",
                     "--batches", "2"]) == 0


class TestServe:
    ARGS = ["--scale", "8", "--edges", "3000", "--batch-size", "200",
            "--flush-interval", "0.005"]

    def test_clean_run(self, tmp_path, capsys):
        assert main(["serve", "--data-dir", str(tmp_path / "d"), *self.ARGS]) == 0
        out = capsys.readouterr().out
        assert "final edges:" in out
        assert "input consumed: 3000" in out

    def test_refuses_dirty_dir_without_resume(self, tmp_path, capsys):
        d = str(tmp_path / "d")
        assert main(["serve", "--data-dir", d, *self.ARGS]) == 0
        assert main(["serve", "--data-dir", d, *self.ARGS]) == 1
        assert "pass --resume" in capsys.readouterr().err

    def test_resume_without_state_fails(self, tmp_path, capsys):
        assert main(["serve", "--data-dir", str(tmp_path / "d"),
                     "--resume", *self.ARGS]) == 1
        assert "nothing to resume" in capsys.readouterr().err

    def test_kill_recover_resume_matches_clean_run(self, tmp_path, capsys):
        clean, crashed = str(tmp_path / "clean"), str(tmp_path / "crashed")
        assert main(["serve", "--data-dir", clean, *self.ARGS]) == 0
        clean_out = capsys.readouterr().out
        final_line = next(l for l in clean_out.splitlines()
                          if l.startswith("final edges:"))

        assert main(["serve", "--data-dir", crashed,
                     "--kill-at", "30000", *self.ARGS]) == 1
        err = capsys.readouterr().err
        assert "writer crashed" in err

        assert main(["recover", "--data-dir", crashed]) == 0
        out = capsys.readouterr().out
        assert "recovered edges:" in out

        assert main(["serve", "--data-dir", crashed, "--resume",
                     *self.ARGS]) == 0
        resumed_out = capsys.readouterr().out
        assert "resumed at input offset" in resumed_out
        assert final_line in resumed_out

    def test_final_checkpoint_and_recover(self, tmp_path, capsys):
        d = str(tmp_path / "d")
        assert main(["serve", "--data-dir", d, "--final-checkpoint",
                     "--checkpoint-every", "3", *self.ARGS]) == 0
        capsys.readouterr()
        assert main(["recover", "--data-dir", d]) == 0
        out = capsys.readouterr().out
        assert "replayed records: 0" in out  # final checkpoint covers all


class TestExitCodes:
    def test_success_is_zero(self, capsys):
        assert main(["datasets"]) == 0

    def test_domain_error_is_one(self, tmp_path, capsys):
        assert main(["recover", "--data-dir", str(tmp_path / "missing")]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "no such service directory" in err

    def test_usage_error_is_two(self):
        with pytest.raises(SystemExit) as exc:
            main(["frobnicate"])
        assert exc.value.code == 2

    def test_missing_required_arg_is_two(self):
        with pytest.raises(SystemExit) as exc:
            main(["serve"])  # --data-dir is required
        assert exc.value.code == 2

    def test_bad_choice_is_two(self):
        with pytest.raises(SystemExit) as exc:
            main(["analytics", "--algorithm", "dijkstra"])
        assert exc.value.code == 2


class TestLogLevel:
    @pytest.mark.parametrize("argv", [
        ["datasets"],
        ["load", "--edges", "2000", "--batches", "2",
         "--systems", "graphtinker"],
        ["analytics", "--edges", "2000"],
        ["probe", "--edges", "2000"],
        ["trace", "--edges", "2000", "--batches", "2"],
    ])
    def test_every_subcommand_accepts_log_level(self, capsys, argv):
        assert main([argv[0], "--log-level", "info", *argv[1:]]) == 0

    def test_generate_accepts_log_level(self, tmp_path):
        assert main(["generate", str(tmp_path / "e.txt"), "--scale", "8",
                     "--edges", "100", "--log-level", "debug"]) == 0

    def test_rejects_unknown_level(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["datasets", "--log-level", "loud"])

    def test_info_level_logs_to_stderr(self, capsys):
        assert main(["load", "--edges", "2000", "--batches", "2",
                     "--systems", "graphtinker", "--log-level", "info"]) == 0
        err = capsys.readouterr().err
        assert "insertion run finished" in err
        assert "repro.cli" in err
