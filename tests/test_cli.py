"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.workloads.io import read_edge_list


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_algorithm_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analytics", "--algorithm", "dijkstra"])


class TestDatasets:
    def test_lists_all_six(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("rmat_1m_10m", "hollywood_like", "kron_like"):
            assert name in out


class TestGenerate:
    def test_raw_rmat_roundtrip(self, tmp_path):
        path = tmp_path / "edges.txt"
        assert main(["generate", str(path), "--scale", "8",
                     "--edges", "500", "--seed", "3"]) == 0
        edges, _ = read_edge_list(path)
        assert edges.shape == (500, 2)
        assert edges.max() < 2**8

    def test_dataset_prefix(self, tmp_path):
        path = tmp_path / "ds.txt"
        assert main(["generate", str(path), "--dataset", "rmat_1m_10m",
                     "--edges", "300"]) == 0
        edges, _ = read_edge_list(path)
        assert edges.shape == (300, 2)


class TestLoad:
    def test_reports_all_requested_systems(self, capsys):
        assert main(["load", "--edges", "6000", "--batches", "2",
                     "--systems", "graphtinker", "stinger"]) == 0
        out = capsys.readouterr().out
        assert "graphtinker" in out and "stinger" in out
        assert "batch1" in out


class TestAnalytics:
    @pytest.mark.parametrize("algorithm", ["bfs", "sssp", "cc", "pagerank"])
    def test_every_algorithm_runs(self, capsys, algorithm):
        assert main(["analytics", "--edges", "5000",
                     "--algorithm", algorithm]) == 0
        out = capsys.readouterr().out
        assert "modeled throughput" in out
        assert "vertices with a result" in out

    def test_policies(self, capsys):
        for policy in ("hybrid", "full", "incremental"):
            assert main(["analytics", "--edges", "4000",
                         "--policy", policy]) == 0

    def test_stinger_backend(self, capsys):
        assert main(["analytics", "--edges", "4000",
                     "--system", "stinger"]) == 0


class TestProbe:
    def test_prints_both_structures(self, capsys):
        assert main(["probe", "--edges", "5000"]) == 0
        out = capsys.readouterr().out
        assert "GraphTinker" in out and "STINGER" in out


class TestFigures:
    def test_exports_csv(self, tmp_path, capsys):
        assert main(["figures", str(tmp_path), "--batches", "2"]) == 0
        files = list(tmp_path.glob("*.csv"))
        assert len(files) == 1
        assert "GT+CAL" in files[0].read_text()
