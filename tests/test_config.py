"""Unit tests for GTConfig / StingerConfig / EngineConfig validation."""

import pytest

from repro.core.config import EngineConfig, GTConfig, StingerConfig
from repro.errors import ConfigError


class TestGTConfig:
    def test_paper_defaults(self):
        cfg = GTConfig()
        assert cfg.pagewidth == 64
        assert cfg.subblock == 8
        assert cfg.workblock == 4
        assert cfg.enable_rhh and cfg.enable_sgh and cfg.enable_cal
        assert not cfg.compact_on_delete

    def test_derived_geometry(self):
        cfg = GTConfig(pagewidth=64, subblock=8, workblock=4)
        assert cfg.subblocks_per_block == 8
        assert cfg.workblocks_per_subblock == 2

    @pytest.mark.parametrize("pw", [0, -1, 3, 48, 100])
    def test_rejects_non_power_of_two_pagewidth(self, pw):
        with pytest.raises(ConfigError):
            GTConfig(pagewidth=pw)

    def test_rejects_subblock_larger_than_pagewidth(self):
        with pytest.raises(ConfigError):
            GTConfig(pagewidth=8, subblock=16)

    def test_rejects_workblock_larger_than_subblock(self):
        with pytest.raises(ConfigError):
            GTConfig(pagewidth=64, subblock=4, workblock=8)

    def test_rejects_non_dividing_subblock(self):
        # powers of two always divide, so exercise via workblock > subblock
        with pytest.raises(ConfigError):
            GTConfig(subblock=2, workblock=4)

    @pytest.mark.parametrize("field", ["cal_group_width", "cal_block_size",
                                       "max_generations", "initial_vertices"])
    def test_rejects_non_positive_sizes(self, field):
        with pytest.raises(ConfigError):
            GTConfig(**{field: 0})

    def test_with_returns_validated_copy(self):
        cfg = GTConfig()
        other = cfg.with_(pagewidth=128)
        assert other.pagewidth == 128
        assert cfg.pagewidth == 64  # original untouched
        with pytest.raises(ConfigError):
            cfg.with_(pagewidth=5)

    def test_frozen(self):
        cfg = GTConfig()
        with pytest.raises(AttributeError):
            cfg.pagewidth = 32  # type: ignore[misc]

    @pytest.mark.parametrize("pw", [8, 16, 32, 64, 128, 256])
    def test_paper_pagewidth_sweep_values_valid(self, pw):
        cfg = GTConfig(pagewidth=pw)
        assert cfg.subblocks_per_block == pw // 8


class TestStingerConfig:
    def test_paper_default_edgeblock(self):
        assert StingerConfig().edgeblock_size == 16

    def test_rejects_bad_sizes(self):
        with pytest.raises(ConfigError):
            StingerConfig(edgeblock_size=0)
        with pytest.raises(ConfigError):
            StingerConfig(initial_vertices=-1)


class TestEngineConfig:
    def test_paper_threshold(self):
        assert EngineConfig().threshold == 0.02

    @pytest.mark.parametrize("t", [0.0, 1.0, -0.5, 2.0])
    def test_rejects_out_of_range_threshold(self, t):
        with pytest.raises(ConfigError):
            EngineConfig(threshold=t)

    def test_rejects_non_positive_iterations(self):
        with pytest.raises(ConfigError):
            EngineConfig(max_iterations=0)
