"""Tests for the memory-access cost model."""

import pytest

from repro.bench.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.core.stats import AccessStats


class TestCost:
    def test_zero_stats_zero_cost(self):
        assert DEFAULT_COST_MODEL.cost(AccessStats()) == 0.0

    def test_linear_in_each_counter(self):
        model = CostModel(random_block=2.0, seq_block=0.5, workblock=0.25,
                          cal_update=0.3, hash_op=0.1, cell_op=0.05)
        s = AccessStats()
        s.random_block_reads = 3
        s.branch_descents = 1
        s.cal_updates = 1
        s.seq_block_reads = 4
        s.workblock_fetches = 2
        s.workblock_writebacks = 2
        s.hash_lookups = 10
        s.cells_scanned = 20
        expected = 2.0 * 4 + 0.5 * 4 + 0.25 * 4 + 0.3 * 1 + 0.1 * 10 + 0.05 * 20
        assert model.cost(s) == pytest.approx(expected)

    def test_sequential_cheaper_than_random(self):
        """The model's load-bearing assumption, asserted explicitly."""
        assert DEFAULT_COST_MODEL.seq_block < DEFAULT_COST_MODEL.random_block


class TestThroughput:
    def test_throughput_ratio_independent_of_scale(self):
        s = AccessStats()
        s.random_block_reads = 10
        t1 = DEFAULT_COST_MODEL.throughput(100, s)
        s2 = AccessStats()
        s2.random_block_reads = 20
        t2 = DEFAULT_COST_MODEL.throughput(200, s2)
        assert t1 == pytest.approx(t2)

    def test_zero_cost_edge_cases(self):
        assert DEFAULT_COST_MODEL.throughput(0, AccessStats()) == 0.0
        assert DEFAULT_COST_MODEL.throughput(5, AccessStats()) == float("inf")

    def test_more_accesses_lower_throughput(self):
        a, b = AccessStats(), AccessStats()
        a.random_block_reads = 10
        b.random_block_reads = 100
        assert DEFAULT_COST_MODEL.throughput(50, a) > DEFAULT_COST_MODEL.throughput(50, b)


class TestOrderingStability:
    """The cost-model conclusions must be robust to coefficient choice."""

    def make_gt_vs_stinger_deltas(self):
        import numpy as np

        from repro.bench.harness import insertion_run, make_store
        from repro.workloads import rmat_edges
        from repro.workloads.streams import EdgeStream

        edges = rmat_edges(10, 20000, seed=1)
        edges = edges[edges[:, 0] != edges[:, 1]]
        stream = EdgeStream(edges, 5000)
        out = {}
        for kind in ("graphtinker", "stinger"):
            store = make_store(kind)
            measurements = insertion_run(store, stream)
            out[kind] = measurements[-1]  # last (most loaded) batch
        return out

    @pytest.mark.parametrize("random_cost", [0.5, 1.0, 2.0, 4.0])
    def test_graphtinker_beats_stinger_under_coefficient_sweep(self, random_cost):
        deltas = self.make_gt_vs_stinger_deltas()
        model = CostModel(random_block=random_cost)
        gt = deltas["graphtinker"].modeled_throughput(model)
        st = deltas["stinger"].modeled_throughput(model)
        assert gt > st
