"""Tests for the Table 1 dataset registry and scaling."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.datasets import (
    DATASET_ORDER,
    DATASETS,
    dataset_properties,
    load_dataset,
    scale_factor,
)


class TestRegistry:
    def test_all_six_paper_datasets_present(self):
        assert set(DATASET_ORDER) == {
            "rmat_1m_10m", "rmat_500k_8m", "rmat_1m_16m", "rmat_2m_32m",
            "hollywood_like", "kron_like",
        }
        assert set(DATASETS) == set(DATASET_ORDER)

    def test_paper_sizes_recorded(self):
        ds = DATASETS["rmat_2m_32m"]
        assert ds.paper_vertices == 2_097_152
        assert ds.paper_edges == 31_770_000

    def test_real_world_substitutes_flagged(self):
        assert DATASETS["hollywood_like"].kind == "real-world (simulated)"
        assert DATASETS["kron_like"].kind == "real-world (simulated)"

    def test_unknown_name_raises(self):
        with pytest.raises(WorkloadError):
            load_dataset("nope")


class TestScaling:
    def test_default_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scale_factor() == 0.01

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert scale_factor() == 0.5

    @pytest.mark.parametrize("bad", ["abc", "0", "-1", "2"])
    def test_bad_env_values(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_SCALE", bad)
        with pytest.raises(WorkloadError):
            scale_factor()

    def test_scaled_edge_budget_tracks_factor(self):
        ds_small, edges_small = load_dataset("rmat_1m_10m", factor=0.001)
        ds_big, edges_big = load_dataset("rmat_1m_10m", factor=0.01)
        assert edges_big.shape[0] == pytest.approx(10 * edges_small.shape[0], rel=0.2)

    def test_average_degree_roughly_preserved(self):
        """Scaling must not flatten the datasets' relative densities."""
        p_holly = dataset_properties("hollywood_like", factor=0.005)
        p_rmat = dataset_properties("rmat_1m_10m", factor=0.005)
        assert p_holly["avg_out_degree"] > 3 * p_rmat["avg_out_degree"]


class TestGeneration:
    def test_edges_read_only_and_cached(self):
        _, a = load_dataset("rmat_500k_8m", factor=0.002)
        _, b = load_dataset("rmat_500k_8m", factor=0.002)
        assert a is b  # cache hit
        with pytest.raises(ValueError):
            a[0, 0] = 1

    def test_edges_unique_and_loop_free(self):
        ds, edges = load_dataset("rmat_1m_16m", factor=0.002)
        keys = (edges[:, 0] << ds.scale) | edges[:, 1]
        assert np.unique(keys).shape[0] == edges.shape[0]
        assert (edges[:, 0] != edges[:, 1]).all()

    def test_properties_row_fields(self):
        row = dataset_properties("rmat_1m_10m", factor=0.002)
        assert {"name", "type", "paper_vertices", "paper_edges",
                "scaled_vertices", "scaled_edges", "avg_out_degree",
                "scaled_sources"} <= set(row)
