"""Randomized differential oracle: six implementations, one truth.

Each case replays one seeded operation stream — duplicate-heavy inserts,
deletes (including misses and double-deletes), and self-loop bursts —
through six systems in lockstep:

* GraphTinker with the **scalar** kernel,
* GraphTinker with the **vector** kernel,
* the STINGER baseline,
* the degree-tiered :class:`~repro.core.tiered.TieredStore` (small
  thresholds, so the stream forces promotions and demotions),
* the process-per-shard :class:`~repro.core.sharded.ShardedStore`
  (3 worker processes, so every stream scatters across shard
  boundaries and merges back through the pipes),
* the dict-of-dicts :class:`~tests.reference.ReferenceGraph`.

After every operation the batch return values must agree, and probe
rounds cross-check ``has_edge`` / ``degree`` / ``neighbors`` /
``edge_weight`` on all four.  Any disagreement is reported with the
config name, stream seed, and op index so the exact failing stream can
be replayed::

    ops = make_stream(seed)          # in this module
    # re-apply ops[:op_index + 1] to the implicated store

The two GraphTinker kernels additionally finish with bit-identical
``AccessStats`` and a clean full fsck — the vector kernel's contract
(see ``repro/core/kernels.py``).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.obs as obs
from repro.core.config import GTConfig, ShardedConfig, StingerConfig, TieredConfig
from repro.core.graphtinker import GraphTinker
from repro.core.sharded import ShardedStore
from repro.core.store import store_digest
from repro.core.tiered import TIER_INLINE, TIER_LARGE, TieredStore
from repro.engine.algorithms import BFS, SSSP, ConnectedComponents
from repro.engine.hybrid import HybridEngine
from repro.errors import VertexNotFoundError
from repro.obs.metrics import MetricsRegistry
from repro.stinger import Stinger
from repro.workloads.rmat import rmat_edges
from tests.reference import (
    ReferenceGraph,
    reference_bfs,
    reference_cc,
    reference_sssp,
)

#: Small tier thresholds so the 120-vertex differential streams cross
#: both promotion and demotion boundaries many times per run.
TIERED_CFG = TieredConfig(tau1=2, tau2=6, hysteresis=1)

# ≥5 configurations, chosen to exercise every feature combination the
# kernels branch on: tiny geometry (fast branch-outs), each feature
# toggled off, and compacting deletes (vector delete must delegate).
CONFIGS = [
    ("default", GTConfig()),
    ("small-geom", GTConfig(pagewidth=16, subblock=8, workblock=4,
                            max_generations=64)),
    ("no-sgh", GTConfig(pagewidth=16, subblock=4, workblock=2,
                        enable_sgh=False)),
    ("no-cal", GTConfig(pagewidth=16, subblock=4, workblock=2,
                        enable_cal=False)),
    ("no-rhh", GTConfig(pagewidth=16, subblock=4, workblock=2,
                        enable_rhh=False)),
    ("compact-delete", GTConfig(pagewidth=16, subblock=8, workblock=4,
                                compact_on_delete=True, cal_block_size=4)),
]
SEEDS = [2, 23, 4242]

N_VERTICES = 120
N_SEGMENTS = 5


@pytest.fixture
def sharded_factory():
    """Build :class:`ShardedStore` instances and close them (killing the
    worker processes) at teardown, pass or fail."""
    stores: list[ShardedStore] = []

    def make(**kwargs) -> ShardedStore:
        store = ShardedStore(ShardedConfig(**kwargs))
        stores.append(store)
        return store

    yield make
    for store in stores:
        store.close()


def make_stream(seed: int):
    """The seeded op stream: a list of ("insert", edges, weights),
    ("delete", edges), or ("probe", vertices) segments."""
    rng = np.random.default_rng(seed)
    ops = []
    for _ in range(N_SEGMENTS):
        n = int(rng.integers(60, 300))
        edges = np.column_stack(
            [rng.integers(0, N_VERTICES, n),
             rng.integers(0, N_VERTICES // 4, n)]  # duplicate-heavy dst range
        ).astype(np.int64)
        ops.append(("insert", edges, rng.random(n)))

        sl = rng.integers(0, N_VERTICES, 25)
        ops.append(("insert", np.column_stack([sl, sl]).astype(np.int64),
                    rng.random(25)))

        nd = int(rng.integers(30, 150))
        dels = np.column_stack(
            [rng.integers(0, N_VERTICES, nd),
             rng.integers(0, N_VERTICES // 4, nd)]
        ).astype(np.int64)
        # double-delete half of them and aim a few at never-inserted ids
        dels = np.vstack([dels, dels[: nd // 2],
                          np.array([[N_VERTICES + 5, 0], [0, 10_000]])])
        ops.append(("delete", dels))

        ops.append(("probe", rng.integers(0, N_VERTICES + 2, 40)))
    return ops


def _probe(systems, ref: ReferenceGraph, vertices, ctx: str) -> None:
    for v in vertices.tolist():
        want_deg = ref.degree(v)
        want_nbrs = ref.neighbors(v)
        for name, store in systems:
            assert store.degree(v) == want_deg, f"{ctx} degree({v}) [{name}]"
            try:
                dsts, weights = store.neighbors(v)
            except VertexNotFoundError:
                # GraphTinker raises for a never-seen source; the oracle
                # must agree it has no neighbours.
                assert not want_nbrs, f"{ctx} neighbors({v}) raised [{name}]"
                continue
            assert set(dsts.tolist()) == want_nbrs, f"{ctx} neighbors({v}) [{name}]"
            for d, w in zip(dsts.tolist(), weights.tolist()):
                assert ref.has_edge(v, d), f"{ctx} phantom edge ({v},{d}) [{name}]"
                assert w == pytest.approx(ref.edge_weight(v, d)), \
                    f"{ctx} edge_weight({v},{d}) [{name}]"
            # spot-check has_edge on hits and a guaranteed miss
            for d in list(want_nbrs)[:3]:
                assert store.has_edge(v, d), f"{ctx} has_edge({v},{d}) [{name}]"
            assert not store.has_edge(v, 10_000), f"{ctx} has_edge miss [{name}]"


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name,cfg", CONFIGS, ids=[c[0] for c in CONFIGS])
def test_differential(name, cfg, seed, sharded_factory):
    systems = [
        ("gt-scalar", GraphTinker(cfg.with_(kernel="scalar"))),
        ("gt-vector", GraphTinker(cfg.with_(kernel="vector"))),
        ("stinger", Stinger(StingerConfig(edgeblock_size=4))),
        ("tiered", TieredStore(TIERED_CFG)),
        ("sharded", sharded_factory(n_shards=3, seed=seed)),
    ]
    ref = ReferenceGraph()

    for op_index, op in enumerate(make_stream(seed)):
        ctx = f"config={name} seed={seed} op_index={op_index}"
        if op[0] == "insert":
            _, edges, weights = op
            want = sum(ref.insert_edge(s, d, w) for (s, d), w
                       in zip(edges.tolist(), weights.tolist()))
            for sys_name, store in systems:
                got = store.insert_batch(edges, weights)
                assert got == want, f"{ctx}: insert_batch [{sys_name}]"
        elif op[0] == "delete":
            edges = op[1]
            want = sum(ref.delete_edge(s, d) for s, d in edges.tolist())
            for sys_name, store in systems:
                got = store.delete_batch(edges)
                assert got == want, f"{ctx}: delete_batch [{sys_name}]"
        else:
            _probe(systems, ref, op[1], ctx)
        for sys_name, store in systems:
            assert store.n_edges == ref.n_edges, f"{ctx}: n_edges [{sys_name}]"

    # Kernel contract: scalar and vector finish bit-identical and clean.
    scalar, vector = systems[0][1], systems[1][1]
    sa, sb = scalar.stats.as_dict(), vector.stats.as_dict()
    assert sa == sb, (f"config={name} seed={seed}: stats diverge "
                      f"{ {k: (sa[k], sb[k]) for k in sa if sa[k] != sb[k]} }")
    assert scalar.memory_blocks() == vector.memory_blocks()
    for label, store in systems[:2]:
        report = store.fsck(level="full")
        assert report.ok, f"config={name} seed={seed} [{label}]: {report.summary()}"

    # The tiered store rode the same stream: it must have actually tiered
    # (the duplicate-heavy stream pushes degrees through both thresholds)
    # and still be structurally clean.
    tiered = systems[3][1]
    assert tiered.promotions >= 1, f"seed={seed}: no promotions observed"
    tiered.check_invariants()
    assert tiered.fsck(level="full").ok

    # The sharded store rode the same stream through three worker
    # processes: placement and per-shard structure must both be clean.
    sharded = systems[4][1]
    sharded.check_invariants()
    assert sharded.fsck(level="full").ok, f"seed={seed}: sharded fsck"


# --------------------------------------------------------------------- #
# Analytics lockstep oracle: every engine configuration, one truth.
#
# After every churn batch (symmetrized inserts + deletes, so CC's
# weak-connectivity contract holds), BFS / SSSP / CC are run from scratch
# in every fixed mode (FP, IP, FP-VC) plus hybrid, over GT-scalar,
# GT-vector, GT-vector+snapshot, STINGER, and STINGER+snapshot, and the
# resulting vertex properties must equal the dict-reference answers
# (BFS levels, Dijkstra distances, union-find component labels) —
# exactly, not approximately: the monotone programs are min-reductions
# over identical float path sums.  Iteration traces must agree across
# stores, and the snapshot-on store must reproduce its snapshot-off
# twin's modeled AccessStats bit-for-bit (the charge-mirror contract).
# Failures name the config, stream seed, and batch index so the exact
# stream can be replayed with ``make_churn_stream(seed)``.
# --------------------------------------------------------------------- #
ENGINE_POLICIES = ["full", "incremental", "full_vc", "hybrid"]
N_AV = 48  # small vertex universe: the oracle runs many engine passes
N_CHURN_BATCHES = 2


def make_churn_stream(seed: int):
    """Symmetrized (insert_edges, weights, delete_edges) churn batches."""
    rng = np.random.default_rng(seed)
    batches = []
    for _ in range(N_CHURN_BATCHES):
        n = int(rng.integers(80, 160))
        fwd = np.column_stack(
            [rng.integers(0, N_AV, n), rng.integers(0, N_AV, n)]
        ).astype(np.int64)
        ins = np.vstack([fwd, fwd[:, ::-1]])
        w = rng.random(n)
        weights = np.concatenate([w, w])
        nd = int(rng.integers(20, 60))
        victim = ins[rng.integers(0, ins.shape[0], nd)]
        dels = np.vstack([victim, victim[:, ::-1]])
        batches.append((ins, weights, dels))
    return batches


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name,cfg", CONFIGS, ids=[c[0] for c in CONFIGS])
def test_analytics_lockstep(name, cfg, seed, sharded_factory):
    systems = [
        ("gt-scalar", GraphTinker(cfg.with_(kernel="scalar"))),
        ("gt-vector", GraphTinker(cfg.with_(kernel="vector"))),
        ("gt-snapshot", GraphTinker(cfg.with_(kernel="vector", snapshot=True))),
        ("stinger", Stinger(StingerConfig(edgeblock_size=4))),
        ("stinger-snapshot",
         Stinger(StingerConfig(edgeblock_size=4, snapshot=True))),
        ("tiered", TieredStore(TIERED_CFG)),
        ("tiered-snapshot", TieredStore(TIERED_CFG.with_(snapshot=True))),
        ("sharded", sharded_factory(n_shards=3, seed=seed)),
        ("sharded-snapshot",
         sharded_factory(n_shards=3, seed=seed, snapshot=True)),
    ]
    # (off-store, on-store) pairs whose modeled stats must match exactly.
    snapshot_pairs = [("gt-vector", "gt-snapshot"),
                      ("stinger", "stinger-snapshot"),
                      ("tiered", "tiered-snapshot"),
                      ("sharded", "sharded-snapshot")]
    ref = ReferenceGraph()

    for b, (ins, weights, dels) in enumerate(make_churn_stream(seed)):
        ctx = f"config={name} seed={seed} batch={b}"
        for s, d, w in zip(ins[:, 0].tolist(), ins[:, 1].tolist(),
                           weights.tolist()):
            ref.insert_edge(s, d, w)
        for s, d in dels.tolist():
            ref.delete_edge(s, d)
        for _, store in systems:
            store.insert_batch(ins, weights)
            store.delete_batch(dels)

        root = int(ins[0, 0])
        expected = {
            "bfs": reference_bfs(ref, root),
            "sssp": reference_sssp(ref, root),
            "cc": reference_cc(ref),
        }
        for algo in ("bfs", "sssp", "cc"):
            program_cls = {"bfs": BFS, "sssp": SSSP,
                           "cc": ConnectedComponents}[algo]
            for policy in ENGINE_POLICIES:
                actx = f"{ctx} algo={algo} policy={policy}"
                baseline = None  # (values, trace) of the first store
                stats_by_store = {}
                for sys_name, store in systems:
                    engine = HybridEngine(store, program_cls(), policy=policy)
                    if algo == "cc":
                        engine.reset()
                    else:
                        engine.reset(roots=[root])
                    before = store.stats.snapshot()
                    result = engine.compute()
                    stats_by_store[sys_name] = store.stats.delta(before).as_dict()
                    values = engine.values.copy()
                    trace = [(r.mode, r.n_active, r.edges_processed,
                              r.n_changed) for r in result.iterations]
                    # 1) against the dict reference
                    want = expected[algo]
                    for v in range(values.shape[0]):
                        if algo == "cc":
                            exp = float(want.get(v, v))
                        else:
                            exp = want.get(v, np.inf)
                        assert values[v] == exp, \
                            (f"{actx} [{sys_name}]: vertex {v} = {values[v]}, "
                             f"reference says {exp}")
                    # 2) against the other stores (same modes, same work)
                    if baseline is None:
                        baseline = (values, trace, sys_name)
                    else:
                        assert np.array_equal(values, baseline[0]), \
                            f"{actx}: values diverge [{sys_name} vs {baseline[2]}]"
                        assert trace == baseline[1], \
                            f"{actx}: traces diverge [{sys_name} vs {baseline[2]}]"
                # 3) charge-mirror contract: snapshot on == snapshot off
                for off, on in snapshot_pairs:
                    assert stats_by_store[on] == stats_by_store[off], (
                        f"{actx}: snapshot changed modeled stats "
                        f"[{off} vs {on}]: "
                        f"{ {k: (stats_by_store[off][k], stats_by_store[on][k]) for k in stats_by_store[off] if stats_by_store[off][k] != stats_by_store[on][k]} }"
                    )
        # GT kernel contract holds through engine traffic too.
        assert systems[0][1].stats.as_dict() == systems[1][1].stats.as_dict(), \
            f"{ctx}: scalar/vector stats diverge"


# --------------------------------------------------------------------- #
# TieredStore acceptance oracle: RMAT streams, both degree shapes.
#
# Power-law (Graph500 parameters) streams concentrate edges on hub
# vertices — the workload the large tier exists for; uniform streams
# (a=b=c=d=0.25) spread degrees thinly — the inline tier's home turf.
# Either way the tiered store must agree with the dict reference
# bit-for-bit (store_digest over the sorted edge list), and the obs
# counters must witness real tier traffic: promotions during ingest, and
# demotions during the mass-delete phase that drags hub degrees back
# down through the hysteresis band.
# --------------------------------------------------------------------- #
RMAT_SCALE = 7          # 128-vertex id space, same ballpark as the oracle
RMAT_EDGES = 1_500      # enough duplicates to build real hubs
UNIFORM = dict(a=0.25, b=0.25, c=0.25, d=0.25, noise=0.0)


@pytest.mark.parametrize("shape", ["power-law", "uniform"])
@pytest.mark.parametrize("seed", SEEDS)
def test_tiered_rmat_transitions_and_digest(shape, seed):
    kwargs = UNIFORM if shape == "uniform" else {}
    edges = rmat_edges(RMAT_SCALE, RMAT_EDGES, seed=seed, **kwargs)
    rng = np.random.default_rng(seed)
    weights = rng.random(edges.shape[0])

    registry = MetricsRegistry()
    prior = obs.set_registry(registry)
    obs.enable()
    try:
        store = TieredStore(TIERED_CFG)
        ref = ReferenceGraph()
        # Ingest in a few batches (exercises the batch path under obs).
        for lo in range(0, edges.shape[0], 500):
            chunk, w = edges[lo:lo + 500], weights[lo:lo + 500]
            store.insert_batch(chunk, w)
            for (s, d), x in zip(chunk.tolist(), w.tolist()):
                ref.insert_edge(s, d, x)
        promotions = registry.counter("store.tier.promotions").value
        assert promotions >= 1, f"{shape} seed={seed}: no promotions"
        assert store.promotions == promotions

        # Mass-delete phase: drain every edge of the hottest vertices so
        # their rows fall back down through the hysteresis band.
        by_degree = sorted(range(2 ** RMAT_SCALE), key=store.degree)
        for v in by_degree[-12:]:
            dsts, _ = store.neighbors(v)
            dels = np.column_stack(
                [np.full(dsts.shape[0], v, dtype=np.int64), dsts])
            store.delete_batch(dels)
            for d in dsts.tolist():
                ref.delete_edge(v, d)
        demotions = registry.counter("store.tier.demotions").value
        assert demotions >= 1, f"{shape} seed={seed}: no demotions"
        assert store.demotions == demotions

        # Bit-equal content against the dict reference.
        items = sorted(ref.weighted_edges().items())
        rsrc = np.array([s for (s, _), _ in items], dtype=np.int64)
        rdst = np.array([d for (_, d), _ in items], dtype=np.int64)
        rw = np.array([w for _, w in items], dtype=np.float64)
        twin = TieredStore(TIERED_CFG)
        twin.insert_batch(np.column_stack([rsrc, rdst]), rw)
        assert store_digest(store) == store_digest(twin), \
            f"{shape} seed={seed}: digest diverges from reference"

        # The occupancy report and the structure itself are consistent.
        occupancy = store.tier_occupancy()
        assert occupancy["promotions"] == store.promotions
        assert occupancy["demotions"] == store.demotions
        if shape == "power-law":
            # Hubs exist: someone must have reached the large tier.
            assert any(store.tier_of(v) == TIER_LARGE
                       for v in range(2 ** RMAT_SCALE)) or demotions > 0
        store.check_invariants()
        assert store.fsck(level="full").ok
    finally:
        obs.disable()
        obs.set_registry(prior)


# --------------------------------------------------------------------- #
# Property-based tier-transition invariants (hypothesis).
#
# Random op interleavings, adversarially shrunk: after every operation
# the tiered store must agree with a dict model on degree and neighbour
# sets, and ``check_invariants`` must hold — degrees match live content,
# no duplicates, every row's tier is legal for its degree under the
# hysteresis bands, and the per-tier occupancy counts are exact.  This
# is the "no edge is lost or invented by a migration" property: every
# promotion/demotion rebuilds the row, so any migration bug surfaces as
# a model divergence within a few shrunk ops.
# --------------------------------------------------------------------- #
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

N_PROP_VERTICES = 8  # tiny universe: every vertex crosses tiers often

_ops = st.lists(
    st.tuples(st.sampled_from(["insert", "delete", "delete_vertex"]),
              st.integers(0, N_PROP_VERTICES - 1),
              st.integers(0, N_PROP_VERTICES - 1)),
    min_size=1, max_size=120,
)


@settings(max_examples=60, deadline=None)
@given(ops=_ops)
def test_tiered_transitions_preserve_content(ops):
    cfg = TieredConfig(tau1=1, tau2=3, hysteresis=1, initial_vertices=2)
    store = TieredStore(cfg)
    model: dict[int, dict[int, float]] = {}
    for i, (op, a, b) in enumerate(ops):
        if op == "insert":
            w = float(i)  # distinct weights make value mix-ups visible
            store.insert_edge(a, b, w)
            model.setdefault(a, {})[b] = w
        elif op == "delete":
            got = store.delete_edge(a, b)
            want = model.get(a, {}).pop(b, None) is not None
            assert got == want, f"op {i}: delete_edge returned {got}"
        else:
            got = store.delete_vertex(a)
            assert got == len(model.pop(a, {})), f"op {i}: delete_vertex"
        store.check_invariants()
        for v, row in model.items():
            assert store.degree(v) == len(row), f"op {i}: degree({v})"
            if row:
                dsts, ws = store.neighbors(v)
                assert dict(zip(dsts.tolist(), ws.tolist())) == row, \
                    f"op {i}: neighbors({v})"
            deg = len(row)
            tier = store.tier_of(v)
            if deg > cfg.tau2:
                assert tier == TIER_LARGE, f"op {i}: hub {v} in tier {tier}"
            elif deg <= cfg.tau1 - cfg.hysteresis:
                assert tier == TIER_INLINE, f"op {i}: cold {v} in tier {tier}"
    assert store.n_edges == sum(len(r) for r in model.values())
