"""Randomized differential oracle: four implementations, one truth.

Each case replays one seeded operation stream — duplicate-heavy inserts,
deletes (including misses and double-deletes), and self-loop bursts —
through four systems in lockstep:

* GraphTinker with the **scalar** kernel,
* GraphTinker with the **vector** kernel,
* the STINGER baseline,
* the dict-of-dicts :class:`~tests.reference.ReferenceGraph`.

After every operation the batch return values must agree, and probe
rounds cross-check ``has_edge`` / ``degree`` / ``neighbors`` /
``edge_weight`` on all four.  Any disagreement is reported with the
config name, stream seed, and op index so the exact failing stream can
be replayed::

    ops = make_stream(seed)          # in this module
    # re-apply ops[:op_index + 1] to the implicated store

The two GraphTinker kernels additionally finish with bit-identical
``AccessStats`` and a clean full fsck — the vector kernel's contract
(see ``repro/core/kernels.py``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import GTConfig, StingerConfig
from repro.core.graphtinker import GraphTinker
from repro.engine.algorithms import BFS, SSSP, ConnectedComponents
from repro.engine.hybrid import HybridEngine
from repro.errors import VertexNotFoundError
from repro.stinger import Stinger
from tests.reference import (
    ReferenceGraph,
    reference_bfs,
    reference_cc,
    reference_sssp,
)

# ≥5 configurations, chosen to exercise every feature combination the
# kernels branch on: tiny geometry (fast branch-outs), each feature
# toggled off, and compacting deletes (vector delete must delegate).
CONFIGS = [
    ("default", GTConfig()),
    ("small-geom", GTConfig(pagewidth=16, subblock=8, workblock=4,
                            max_generations=64)),
    ("no-sgh", GTConfig(pagewidth=16, subblock=4, workblock=2,
                        enable_sgh=False)),
    ("no-cal", GTConfig(pagewidth=16, subblock=4, workblock=2,
                        enable_cal=False)),
    ("no-rhh", GTConfig(pagewidth=16, subblock=4, workblock=2,
                        enable_rhh=False)),
    ("compact-delete", GTConfig(pagewidth=16, subblock=8, workblock=4,
                                compact_on_delete=True, cal_block_size=4)),
]
SEEDS = [2, 23, 4242]

N_VERTICES = 120
N_SEGMENTS = 5


def make_stream(seed: int):
    """The seeded op stream: a list of ("insert", edges, weights),
    ("delete", edges), or ("probe", vertices) segments."""
    rng = np.random.default_rng(seed)
    ops = []
    for _ in range(N_SEGMENTS):
        n = int(rng.integers(60, 300))
        edges = np.column_stack(
            [rng.integers(0, N_VERTICES, n),
             rng.integers(0, N_VERTICES // 4, n)]  # duplicate-heavy dst range
        ).astype(np.int64)
        ops.append(("insert", edges, rng.random(n)))

        sl = rng.integers(0, N_VERTICES, 25)
        ops.append(("insert", np.column_stack([sl, sl]).astype(np.int64),
                    rng.random(25)))

        nd = int(rng.integers(30, 150))
        dels = np.column_stack(
            [rng.integers(0, N_VERTICES, nd),
             rng.integers(0, N_VERTICES // 4, nd)]
        ).astype(np.int64)
        # double-delete half of them and aim a few at never-inserted ids
        dels = np.vstack([dels, dels[: nd // 2],
                          np.array([[N_VERTICES + 5, 0], [0, 10_000]])])
        ops.append(("delete", dels))

        ops.append(("probe", rng.integers(0, N_VERTICES + 2, 40)))
    return ops


def _probe(systems, ref: ReferenceGraph, vertices, ctx: str) -> None:
    for v in vertices.tolist():
        want_deg = ref.degree(v)
        want_nbrs = ref.neighbors(v)
        for name, store in systems:
            assert store.degree(v) == want_deg, f"{ctx} degree({v}) [{name}]"
            try:
                dsts, weights = store.neighbors(v)
            except VertexNotFoundError:
                # GraphTinker raises for a never-seen source; the oracle
                # must agree it has no neighbours.
                assert not want_nbrs, f"{ctx} neighbors({v}) raised [{name}]"
                continue
            assert set(dsts.tolist()) == want_nbrs, f"{ctx} neighbors({v}) [{name}]"
            for d, w in zip(dsts.tolist(), weights.tolist()):
                assert ref.has_edge(v, d), f"{ctx} phantom edge ({v},{d}) [{name}]"
                assert w == pytest.approx(ref.edge_weight(v, d)), \
                    f"{ctx} edge_weight({v},{d}) [{name}]"
            # spot-check has_edge on hits and a guaranteed miss
            for d in list(want_nbrs)[:3]:
                assert store.has_edge(v, d), f"{ctx} has_edge({v},{d}) [{name}]"
            assert not store.has_edge(v, 10_000), f"{ctx} has_edge miss [{name}]"


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name,cfg", CONFIGS, ids=[c[0] for c in CONFIGS])
def test_differential(name, cfg, seed):
    systems = [
        ("gt-scalar", GraphTinker(cfg.with_(kernel="scalar"))),
        ("gt-vector", GraphTinker(cfg.with_(kernel="vector"))),
        ("stinger", Stinger(StingerConfig(edgeblock_size=4))),
    ]
    ref = ReferenceGraph()

    for op_index, op in enumerate(make_stream(seed)):
        ctx = f"config={name} seed={seed} op_index={op_index}"
        if op[0] == "insert":
            _, edges, weights = op
            want = sum(ref.insert_edge(s, d, w) for (s, d), w
                       in zip(edges.tolist(), weights.tolist()))
            for sys_name, store in systems:
                got = store.insert_batch(edges, weights)
                assert got == want, f"{ctx}: insert_batch [{sys_name}]"
        elif op[0] == "delete":
            edges = op[1]
            want = sum(ref.delete_edge(s, d) for s, d in edges.tolist())
            for sys_name, store in systems:
                got = store.delete_batch(edges)
                assert got == want, f"{ctx}: delete_batch [{sys_name}]"
        else:
            _probe(systems, ref, op[1], ctx)
        for sys_name, store in systems:
            assert store.n_edges == ref.n_edges, f"{ctx}: n_edges [{sys_name}]"

    # Kernel contract: scalar and vector finish bit-identical and clean.
    scalar, vector = systems[0][1], systems[1][1]
    sa, sb = scalar.stats.as_dict(), vector.stats.as_dict()
    assert sa == sb, (f"config={name} seed={seed}: stats diverge "
                      f"{ {k: (sa[k], sb[k]) for k in sa if sa[k] != sb[k]} }")
    assert scalar.memory_blocks() == vector.memory_blocks()
    for label, store in systems[:2]:
        report = store.fsck(level="full")
        assert report.ok, f"config={name} seed={seed} [{label}]: {report.summary()}"


# --------------------------------------------------------------------- #
# Analytics lockstep oracle: every engine configuration, one truth.
#
# After every churn batch (symmetrized inserts + deletes, so CC's
# weak-connectivity contract holds), BFS / SSSP / CC are run from scratch
# in every fixed mode (FP, IP, FP-VC) plus hybrid, over GT-scalar,
# GT-vector, GT-vector+snapshot, STINGER, and STINGER+snapshot, and the
# resulting vertex properties must equal the dict-reference answers
# (BFS levels, Dijkstra distances, union-find component labels) —
# exactly, not approximately: the monotone programs are min-reductions
# over identical float path sums.  Iteration traces must agree across
# stores, and the snapshot-on store must reproduce its snapshot-off
# twin's modeled AccessStats bit-for-bit (the charge-mirror contract).
# Failures name the config, stream seed, and batch index so the exact
# stream can be replayed with ``make_churn_stream(seed)``.
# --------------------------------------------------------------------- #
ENGINE_POLICIES = ["full", "incremental", "full_vc", "hybrid"]
N_AV = 48  # small vertex universe: the oracle runs many engine passes
N_CHURN_BATCHES = 2


def make_churn_stream(seed: int):
    """Symmetrized (insert_edges, weights, delete_edges) churn batches."""
    rng = np.random.default_rng(seed)
    batches = []
    for _ in range(N_CHURN_BATCHES):
        n = int(rng.integers(80, 160))
        fwd = np.column_stack(
            [rng.integers(0, N_AV, n), rng.integers(0, N_AV, n)]
        ).astype(np.int64)
        ins = np.vstack([fwd, fwd[:, ::-1]])
        w = rng.random(n)
        weights = np.concatenate([w, w])
        nd = int(rng.integers(20, 60))
        victim = ins[rng.integers(0, ins.shape[0], nd)]
        dels = np.vstack([victim, victim[:, ::-1]])
        batches.append((ins, weights, dels))
    return batches


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name,cfg", CONFIGS, ids=[c[0] for c in CONFIGS])
def test_analytics_lockstep(name, cfg, seed):
    systems = [
        ("gt-scalar", GraphTinker(cfg.with_(kernel="scalar"))),
        ("gt-vector", GraphTinker(cfg.with_(kernel="vector"))),
        ("gt-snapshot", GraphTinker(cfg.with_(kernel="vector", snapshot=True))),
        ("stinger", Stinger(StingerConfig(edgeblock_size=4))),
        ("stinger-snapshot",
         Stinger(StingerConfig(edgeblock_size=4, snapshot=True))),
    ]
    # (off-store, on-store) pairs whose modeled stats must match exactly.
    snapshot_pairs = [("gt-vector", "gt-snapshot"), ("stinger", "stinger-snapshot")]
    ref = ReferenceGraph()

    for b, (ins, weights, dels) in enumerate(make_churn_stream(seed)):
        ctx = f"config={name} seed={seed} batch={b}"
        for s, d, w in zip(ins[:, 0].tolist(), ins[:, 1].tolist(),
                           weights.tolist()):
            ref.insert_edge(s, d, w)
        for s, d in dels.tolist():
            ref.delete_edge(s, d)
        for _, store in systems:
            store.insert_batch(ins, weights)
            store.delete_batch(dels)

        root = int(ins[0, 0])
        expected = {
            "bfs": reference_bfs(ref, root),
            "sssp": reference_sssp(ref, root),
            "cc": reference_cc(ref),
        }
        for algo in ("bfs", "sssp", "cc"):
            program_cls = {"bfs": BFS, "sssp": SSSP,
                           "cc": ConnectedComponents}[algo]
            for policy in ENGINE_POLICIES:
                actx = f"{ctx} algo={algo} policy={policy}"
                baseline = None  # (values, trace) of the first store
                stats_by_store = {}
                for sys_name, store in systems:
                    engine = HybridEngine(store, program_cls(), policy=policy)
                    if algo == "cc":
                        engine.reset()
                    else:
                        engine.reset(roots=[root])
                    before = store.stats.snapshot()
                    result = engine.compute()
                    stats_by_store[sys_name] = store.stats.delta(before).as_dict()
                    values = engine.values.copy()
                    trace = [(r.mode, r.n_active, r.edges_processed,
                              r.n_changed) for r in result.iterations]
                    # 1) against the dict reference
                    want = expected[algo]
                    for v in range(values.shape[0]):
                        if algo == "cc":
                            exp = float(want.get(v, v))
                        else:
                            exp = want.get(v, np.inf)
                        assert values[v] == exp, \
                            (f"{actx} [{sys_name}]: vertex {v} = {values[v]}, "
                             f"reference says {exp}")
                    # 2) against the other stores (same modes, same work)
                    if baseline is None:
                        baseline = (values, trace, sys_name)
                    else:
                        assert np.array_equal(values, baseline[0]), \
                            f"{actx}: values diverge [{sys_name} vs {baseline[2]}]"
                        assert trace == baseline[1], \
                            f"{actx}: traces diverge [{sys_name} vs {baseline[2]}]"
                # 3) charge-mirror contract: snapshot on == snapshot off
                for off, on in snapshot_pairs:
                    assert stats_by_store[on] == stats_by_store[off], (
                        f"{actx}: snapshot changed modeled stats "
                        f"[{off} vs {on}]: "
                        f"{ {k: (stats_by_store[off][k], stats_by_store[on][k]) for k in stats_by_store[off] if stats_by_store[off][k] != stats_by_store[on][k]} }"
                    )
        # GT kernel contract holds through engine traffic too.
        assert systems[0][1].stats.as_dict() == systems[1][1].stats.as_dict(), \
            f"{ctx}: scalar/vector stats diverge"
