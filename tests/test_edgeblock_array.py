"""Unit tests for the EdgeblockArray (Tree-Based Hashing, regions, compaction)."""

import numpy as np
import pytest

from repro.core.config import GTConfig
from repro.core.edgeblock_array import MAIN, OVERFLOW, EdgeblockArray
from repro.errors import CapacityError


def make(compact=False, **kw):
    defaults = dict(pagewidth=16, subblock=4, workblock=2, initial_vertices=2)
    defaults.update(kw)
    return EdgeblockArray(GTConfig(compact_on_delete=compact, **defaults))


class TestVertexRows:
    def test_rows_allocated_densely(self):
        eba = make()
        eba.ensure_vertex(0)
        eba.ensure_vertex(3)
        assert eba.n_vertices == 4
        assert eba.main.n_used == 4

    def test_degree_of_unallocated_vertex(self):
        eba = make()
        assert eba.degree(7) == 0


class TestInsertFind:
    def test_insert_then_find(self):
        eba = make()
        is_new, loc = eba.insert(0, 42, 2.5)
        assert is_new
        assert loc.region == MAIN
        found = eba.find(0, 42)
        assert found == loc
        assert eba.get_weight(found) == 2.5

    def test_duplicate_updates_in_place(self):
        eba = make()
        eba.insert(0, 42, 1.0)
        is_new, loc = eba.insert(0, 42, 7.0)
        assert not is_new
        assert eba.get_weight(loc) == 7.0
        assert eba.degree(0) == 1

    def test_find_absent(self):
        eba = make()
        eba.insert(0, 1)
        assert eba.find(0, 2) is None
        assert eba.find(5, 1) is None  # vertex never seen

    def test_branch_out_to_overflow(self):
        """Inserting many edges for one vertex must spill to overflow."""
        eba = make()
        n = 200
        for d in range(n):
            eba.insert(0, d)
        assert eba.degree(0) == n
        assert eba.overflow.n_used > 0
        assert eba.stats.branch_allocations == eba.overflow.n_used
        for d in range(n):
            assert eba.find(0, d) is not None

    def test_deep_descent_multiple_generations(self):
        eba = make()
        # 16-cell blocks, 4 subblocks: 2000 edges needs several generations
        for d in range(2000):
            eba.insert(0, d)
        assert eba.degree(0) == 2000
        dsts, _ = eba.neighbors(0)
        assert sorted(dsts.tolist()) == list(range(2000))

    def test_max_generations_guard(self):
        eba = EdgeblockArray(
            GTConfig(pagewidth=4, subblock=4, workblock=2, max_generations=2,
                     initial_vertices=1)
        )
        with pytest.raises(CapacityError):
            for d in range(100):
                eba.insert(0, d)

    def test_duplicate_found_at_deep_generation(self):
        """Regression: a duplicate whose copy lives in a child edgeblock
        must be updated there, never re-inserted at a shallower level."""
        eba = make()
        for d in range(500):
            eba.insert(0, d)
        # every one of these is a duplicate, possibly deep in the tree
        for d in range(500):
            is_new, _ = eba.insert(0, d, weight=float(d) + 0.5)
            assert not is_new
        assert eba.degree(0) == 500
        for d in range(0, 500, 37):
            loc = eba.find(0, d)
            assert eba.get_weight(loc) == d + 0.5


class TestDelete:
    def test_delete_only_tombstones(self):
        eba = make()
        eba.insert(0, 5, cal_block=3, cal_slot=1)
        cal_ptr = eba.delete(0, 5)
        assert cal_ptr == (3, 1)
        assert eba.find(0, 5) is None
        assert eba.degree(0) == 0
        assert eba.stats.tombstones_set == 1

    def test_delete_absent(self):
        eba = make()
        eba.insert(0, 5)
        assert eba.delete(0, 6) is None
        assert eba.delete(9, 5) is None

    def test_delete_then_reinsert(self):
        eba = make()
        eba.insert(0, 5, 1.0)
        eba.delete(0, 5)
        is_new, _ = eba.insert(0, 5, 2.0)
        assert is_new
        assert eba.degree(0) == 1
        assert eba.get_weight(eba.find(0, 5)) == 2.0

    def test_delete_deep_edge(self):
        eba = make()
        for d in range(300):
            eba.insert(0, d)
        for d in range(0, 300, 3):
            assert eba.delete(0, d) is not None
        assert eba.degree(0) == 200
        for d in range(300):
            present = eba.find(0, d) is not None
            assert present == (d % 3 != 0)


class TestDeleteAndCompact:
    def test_compaction_pulls_up_and_frees(self):
        eba = make(compact=True)
        for d in range(400):
            eba.insert(0, d)
        blocks_before = eba.overflow.n_used
        for d in range(400):
            assert eba.delete(0, d) is not None
        assert eba.degree(0) == 0
        assert eba.overflow.n_used == 0
        assert blocks_before > 0
        assert eba.stats.compaction_moves > 0

    def test_compaction_preserves_remaining_edges(self):
        eba = make(compact=True)
        rng = np.random.default_rng(5)
        dsts = rng.permutation(600)
        for d in dsts[:500]:
            eba.insert(0, int(d))
        expected = set(int(x) for x in dsts[:500])
        for d in dsts[:250]:
            eba.delete(0, int(d))
            expected.discard(int(d))
        got, _ = eba.neighbors(0)
        assert set(got.tolist()) == expected
        for d in expected:
            assert eba.find(0, d) is not None

    def test_compaction_moves_cal_pointer_with_edge(self):
        eba = make(compact=True)
        for d in range(100):
            eba.insert(0, d, cal_block=d, cal_slot=d % 7)
        # delete half; survivors must still report their own CAL pointers
        for d in range(0, 100, 2):
            eba.delete(0, d)
        for d in range(1, 100, 2):
            loc = eba.find(0, d)
            assert eba.get_cal_pointer(loc) == (d, d % 7)


class TestRetrieval:
    def test_neighbors_empty_vertex(self):
        eba = make()
        dst, w = eba.neighbors(0)
        assert dst.size == 0 and w.size == 0

    def test_iter_all_edges(self):
        eba = make()
        for s in range(5):
            for d in range(s + 1):
                eba.insert(s, d, weight=s * 10.0 + d)
        seen = {}
        for s, dsts, ws in eba.iter_all_edges():
            for d, w in zip(dsts.tolist(), ws.tolist()):
                seen[(s, d)] = w
        assert len(seen) == sum(range(1, 6))
        assert seen[(3, 2)] == 32.0

    def test_vertex_blocks_counts_random_reads(self):
        eba = make()
        for d in range(200):
            eba.insert(0, d)
        before = eba.stats.random_block_reads
        blocks = list(eba.vertex_blocks(0))
        assert eba.stats.random_block_reads - before == len(blocks)
        assert len(blocks) == 1 + eba.overflow.n_used  # single-vertex tree


class TestCalPointerPlumbing:
    def test_set_get_cal_pointer(self):
        eba = make()
        _, loc = eba.insert(0, 9)
        eba.set_cal_pointer(loc, 4, 6)
        assert eba.get_cal_pointer(loc) == (4, 6)

    def test_displacement_preserves_cal_pointers(self):
        """RHH swaps and branch-outs must carry CAL pointers with edges."""
        eba = make()
        for d in range(300):
            _, loc = eba.insert(0, d)
            eba.set_cal_pointer(loc, d, d % 5)
        for d in range(300):
            loc = eba.find(0, d)
            assert eba.get_cal_pointer(loc) == (d, d % 5), d
