"""Engine correctness against networkx, across all policies and stores.

These are the system-level oracles: BFS levels, SSSP distances, CC labels
and PageRank scores computed through the hybrid engine must agree with
networkx on random graphs, for every execution policy and both stores.
"""

import networkx as nx
import numpy as np
import pytest

from repro import GraphTinker, GTConfig, StingerConfig
from repro.engine import BFS, SSSP, ConnectedComponents, HybridEngine, PageRank
from repro.stinger import Stinger
from repro.workloads import rmat_edges
from repro.workloads.streams import symmetrize

POLICIES = ["full", "incremental", "hybrid"]


def make_store(kind):
    if kind == "gt":
        return GraphTinker(GTConfig(pagewidth=16, subblock=4, workblock=2))
    return Stinger(StingerConfig(edgeblock_size=4))


@pytest.fixture(scope="module")
def graph_data():
    edges = rmat_edges(9, 2500, seed=21)
    edges = edges[edges[:, 0] != edges[:, 1]]
    rng = np.random.default_rng(2)
    weights = rng.uniform(0.1, 3.0, edges.shape[0])
    G = nx.DiGraph()
    for (s, d), w in zip(edges.tolist(), weights.tolist()):
        G.add_edge(s, d, weight=w)  # duplicates: last weight wins (store semantics)
    return edges, weights, G


@pytest.mark.parametrize("store_kind", ["gt", "stinger"])
@pytest.mark.parametrize("policy", POLICIES)
class TestBFS:
    def test_levels_match_networkx(self, graph_data, store_kind, policy):
        edges, weights, G = graph_data
        store = make_store(store_kind)
        store.insert_batch(edges, weights)
        engine = HybridEngine(store, BFS(), policy=policy)
        root = int(edges[0, 0])
        engine.reset(roots=[root])
        engine.compute()
        expected = nx.single_source_shortest_path_length(G, root)
        for v, level in expected.items():
            assert engine.value_of(v) == level
        # unreachable vertices stay at +inf
        reachable = set(expected)
        for v in range(engine.values.shape[0]):
            if v not in reachable:
                assert np.isinf(engine.value_of(v))


@pytest.mark.parametrize("policy", POLICIES)
class TestSSSP:
    def test_distances_match_dijkstra(self, graph_data, policy):
        edges, weights, G = graph_data
        store = GraphTinker(GTConfig(pagewidth=16, subblock=4, workblock=2))
        store.insert_batch(edges, weights)
        engine = HybridEngine(store, SSSP(), policy=policy)
        root = int(edges[0, 0])
        engine.reset(roots=[root])
        engine.compute()
        expected = nx.single_source_dijkstra_path_length(G, root)
        for v, dist in expected.items():
            assert engine.value_of(v) == pytest.approx(dist)


@pytest.mark.parametrize("store_kind", ["gt", "stinger"])
@pytest.mark.parametrize("policy", POLICIES)
class TestCC:
    def test_labels_match_networkx_components(self, graph_data, store_kind, policy):
        edges, _, _ = graph_data
        sym = symmetrize(edges)
        store = make_store(store_kind)
        store.insert_batch(sym)
        engine = HybridEngine(store, ConnectedComponents(), policy=policy)
        engine.reset()
        engine.mark_inconsistent(sym)
        engine.compute()
        G = nx.Graph()
        G.add_edges_from(edges.tolist())
        for comp in nx.connected_components(G):
            labels = {engine.value_of(v) for v in comp}
            assert labels == {float(min(comp))}

    def test_isolated_vertices_keep_own_label(self, graph_data, store_kind, policy):
        edges, _, _ = graph_data
        sym = symmetrize(edges)
        store = make_store(store_kind)
        store.insert_batch(sym)
        engine = HybridEngine(store, ConnectedComponents(), policy=policy)
        engine.reset()
        engine.mark_inconsistent(sym)
        engine.compute()
        touched = set(np.unique(sym).tolist())
        for v in range(engine.values.shape[0]):
            if v not in touched:
                assert engine.value_of(v) == v


class TestPageRank:
    def test_matches_networkx(self, graph_data):
        edges, _, _ = graph_data
        store = GraphTinker(GTConfig(pagewidth=16, subblock=4, workblock=2))
        store.insert_batch(edges)
        program = PageRank(tol=1e-12)
        engine = HybridEngine(store, program, policy="full")
        engine.reset()
        n = engine.values.shape[0]
        engine.values = program.init_state(n)
        engine._active = np.arange(n)
        engine.compute()
        G = nx.DiGraph()
        G.add_edges_from(edges.tolist())
        G.add_nodes_from(range(n))
        expected = nx.pagerank(G, alpha=0.85, tol=1e-12, max_iter=1000)
        for v, p in expected.items():
            assert engine.value_of(v) == pytest.approx(p, abs=1e-7)

    def test_incremental_policy_rejected(self, graph_data):
        from repro.errors import EngineError

        edges, _, _ = graph_data
        store = GraphTinker(GTConfig(pagewidth=16, subblock=4, workblock=2))
        store.insert_batch(edges[:100])
        with pytest.raises(EngineError):
            HybridEngine(store, PageRank(), policy="incremental")
