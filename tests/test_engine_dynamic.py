"""Dynamic-graph engine tests: batch updates over evolving graphs.

These exercise the paper's actual evaluation loop — interleave batch
inserts with analytics — and verify incremental continuation equals a
from-scratch recompute (the soundness condition the hybrid engine rests
on), including after deletions (where state must be reset, Sec. V.B runs
analytics in FP mode after deletion batches).
"""

import networkx as nx
import numpy as np
import pytest

from repro import GraphTinker, GTConfig
from repro.engine import BFS, SSSP, ConnectedComponents, HybridEngine
from repro.workloads import rmat_edges
from repro.workloads.streams import EdgeStream, symmetrize


def small_store():
    return GraphTinker(GTConfig(pagewidth=16, subblock=4, workblock=2))


@pytest.fixture(scope="module")
def stream_edges():
    edges = rmat_edges(9, 4000, seed=33)
    return edges[edges[:, 0] != edges[:, 1]]


class TestIncrementalContinuation:
    @pytest.mark.parametrize("policy", ["incremental", "hybrid"])
    def test_bfs_over_batches_equals_scratch(self, stream_edges, policy):
        root = int(stream_edges[0, 0])
        store = small_store()
        engine = HybridEngine(store, BFS(), policy=policy)
        engine.reset(roots=[root])
        for batch in EdgeStream(stream_edges, 700).insert_batches():
            engine.update_and_compute(batch)
        # oracle: BFS on the final graph
        G = nx.DiGraph()
        G.add_edges_from(stream_edges.tolist())
        expected = nx.single_source_shortest_path_length(G, root)
        for v, level in expected.items():
            assert engine.value_of(v) == level

    def test_cc_over_batches_equals_scratch(self, stream_edges):
        sym = symmetrize(stream_edges)
        store = small_store()
        engine = HybridEngine(store, ConnectedComponents(), policy="hybrid")
        engine.reset()
        for batch in EdgeStream(sym, 900).insert_batches():
            engine.update_and_compute(batch)
        G = nx.Graph()
        G.add_edges_from(stream_edges.tolist())
        for comp in nx.connected_components(G):
            assert {engine.value_of(v) for v in comp} == {float(min(comp))}

    def test_sssp_over_batches_equals_scratch(self, stream_edges):
        rng = np.random.default_rng(6)
        # Fixed per-edge weights: re-inserted duplicates keep the same
        # weight, preserving monotonicity for incremental continuation.
        uniq = {}
        for s, d in stream_edges.tolist():
            uniq.setdefault((s, d), float(rng.uniform(0.1, 2.0)))
        weights = np.array([uniq[(s, d)] for s, d in stream_edges.tolist()])
        root = int(stream_edges[0, 0])
        store = small_store()
        engine = HybridEngine(store, SSSP(), policy="hybrid")
        engine.reset(roots=[root])
        for i in range(0, stream_edges.shape[0], 800):
            engine.store.insert_batch(stream_edges[i:i+800], weights[i:i+800])
            engine.mark_inconsistent(stream_edges[i:i+800])
            engine.compute()
        G = nx.DiGraph()
        for (s, d), w in uniq.items():
            G.add_edge(s, d, weight=w)
        expected = nx.single_source_dijkstra_path_length(G, root)
        for v, dist in expected.items():
            assert engine.value_of(v) == pytest.approx(dist)


class TestDeletions:
    def test_recompute_after_deletions_matches_networkx(self, stream_edges):
        """Deletions break monotonicity; a reset + FP recompute is the
        sound protocol (what Figs. 15-16 measure)."""
        store = small_store()
        store.insert_batch(stream_edges)
        doomed = stream_edges[::3]
        store.delete_batch(doomed)
        root = int(stream_edges[1, 0])
        engine = HybridEngine(store, BFS(), policy="full")
        engine.reset(roots=[root])
        engine.compute()
        G = nx.DiGraph()
        G.add_edges_from(stream_edges.tolist())
        G.remove_edges_from(doomed.tolist())
        if root in G:
            expected = nx.single_source_shortest_path_length(G, root)
            for v, level in expected.items():
                assert engine.value_of(v) == level

    def test_interleaved_inserts_and_deletes(self, stream_edges):
        store = small_store()
        half = stream_edges.shape[0] // 2
        store.insert_batch(stream_edges[:half])
        store.delete_batch(stream_edges[:half:5])
        store.insert_batch(stream_edges[half:])
        root = int(stream_edges[0, 0])
        engine = HybridEngine(store, BFS(), policy="hybrid")
        engine.reset(roots=[root])
        engine.compute()
        G = nx.DiGraph()
        G.add_edges_from(stream_edges[:half].tolist())
        G.remove_edges_from(stream_edges[:half:5].tolist())
        G.add_edges_from(stream_edges[half:].tolist())
        expected = nx.single_source_shortest_path_length(G, root)
        for v, level in expected.items():
            assert engine.value_of(v) == level


class TestVertexGrowth:
    def test_property_vector_grows_with_graph(self):
        store = small_store()
        engine = HybridEngine(store, BFS(), policy="hybrid")
        engine.reset(roots=[0])
        engine.update_and_compute(np.array([[0, 5]]))
        assert engine.value_of(5) == 1.0
        engine.update_and_compute(np.array([[5, 1000]]))
        assert engine.value_of(1000) == 2.0

    def test_cc_growth_labels_new_vertices(self):
        store = small_store()
        engine = HybridEngine(store, ConnectedComponents(), policy="hybrid")
        engine.reset()
        engine.update_and_compute(symmetrize(np.array([[0, 1]])))
        engine.update_and_compute(symmetrize(np.array([[10, 11]])))
        assert engine.value_of(11) == 10.0
        assert engine.value_of(1) == 0.0
