"""Tests for the hybrid engine's mode machinery (Sec. IV.B).

Covers the inference-box predictor, per-iteration mode traces, the
T = A/E threshold rule, policy pinning, and the guarantee that hybrid
execution computes exactly what the fixed-mode policies compute.
"""

import numpy as np
import pytest

from repro import EngineConfig, GraphTinker, GTConfig
from repro.engine import BFS, ConnectedComponents, HybridEngine, PageRank
from repro.engine.modes import FULL, INCREMENTAL
from repro.errors import EngineError
from repro.workloads import rmat_edges
from repro.workloads.streams import symmetrize


def small_store(edges=None):
    gt = GraphTinker(GTConfig(pagewidth=16, subblock=4, workblock=2))
    if edges is not None:
        gt.insert_batch(edges)
    return gt


class TestInferenceBox:
    def test_threshold_rule(self):
        store = small_store(np.array([[i, i + 1] for i in range(100)]))
        engine = HybridEngine(store, BFS(), EngineConfig(threshold=0.02))
        # A/E = 1/100 = 0.01 < 0.02 -> IP
        assert engine.predict_mode(1) == (INCREMENTAL, pytest.approx(0.01))
        # A/E = 3/100 = 0.03 > 0.02 -> FP
        assert engine.predict_mode(3) == (FULL, pytest.approx(0.03))

    def test_empty_graph_predicts_incremental(self):
        engine = HybridEngine(small_store(), BFS())
        mode, t = engine.predict_mode(5)
        assert mode == INCREMENTAL

    def test_policy_pins_mode(self):
        store = small_store(np.array([[0, 1]]))
        for policy, expected in (("full", FULL), ("incremental", INCREMENTAL)):
            engine = HybridEngine(store, BFS(), policy=policy)
            assert engine.predict_mode(1)[0] == expected
            assert engine.predict_mode(10**9)[0] == expected

    def test_non_monotone_forced_full(self):
        store = small_store(np.array([[0, 1]]))
        engine = HybridEngine(store, PageRank(), policy="hybrid")
        assert engine.predict_mode(0)[0] == FULL

    def test_unknown_policy_rejected(self):
        with pytest.raises(EngineError):
            HybridEngine(small_store(), BFS(), policy="nope")


class TestModeTraces:
    def test_iteration_records_modes(self):
        edges = rmat_edges(8, 800, seed=4)
        edges = edges[edges[:, 0] != edges[:, 1]]
        store = small_store(edges)
        engine = HybridEngine(store, BFS(), policy="hybrid")
        engine.reset(roots=[int(edges[0, 0])])
        result = engine.compute()
        assert result.n_iterations > 0
        assert all(r.mode in (FULL, INCREMENTAL) for r in result.iterations)
        assert result.edges_processed > 0

    def test_hybrid_uses_both_modes_on_bfs_wave(self):
        """A BFS frontier grows then shrinks: hybrid should flip modes."""
        edges = rmat_edges(10, 8000, seed=9)
        edges = edges[edges[:, 0] != edges[:, 1]]
        store = small_store(edges)
        engine = HybridEngine(store, BFS(), policy="hybrid")
        # root = highest-degree vertex for a wide wave
        srcs, counts = np.unique(edges[:, 0], return_counts=True)
        root = int(srcs[np.argmax(counts)])
        engine.reset(roots=[root])
        result = engine.compute()
        modes = set(result.modes_used())
        assert modes == {FULL, INCREMENTAL}

    def test_fixed_policies_never_flip(self):
        edges = rmat_edges(9, 2000, seed=5)
        edges = edges[edges[:, 0] != edges[:, 1]]
        for policy, expected in (("full", {FULL}), ("incremental", {INCREMENTAL})):
            store = small_store(edges)
            engine = HybridEngine(store, BFS(), policy=policy)
            engine.reset(roots=[int(edges[0, 0])])
            result = engine.compute()
            assert set(result.modes_used()) == expected

    def test_stats_delta_attached_per_iteration(self):
        edges = np.array([[0, 1], [1, 2], [2, 3]])
        store = small_store(edges)
        engine = HybridEngine(store, BFS(), policy="full")
        engine.reset(roots=[0])
        result = engine.compute()
        for rec in result.iterations:
            assert rec.stats_delta.seq_block_reads > 0  # CAL streaming


class TestHybridEquivalence:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_hybrid_equals_fixed_modes(self, seed):
        edges = rmat_edges(9, 3000, seed=seed)
        edges = edges[edges[:, 0] != edges[:, 1]]
        root = int(edges[0, 0])
        results = {}
        for policy in ("full", "incremental", "hybrid"):
            store = small_store(edges)
            engine = HybridEngine(store, BFS(), policy=policy)
            engine.reset(roots=[root])
            engine.compute()
            results[policy] = engine.values.copy()
        n = min(v.shape[0] for v in results.values())
        assert (results["full"][:n] == results["incremental"][:n]).all()
        assert (results["full"][:n] == results["hybrid"][:n]).all()

    def test_hybrid_equals_fixed_modes_cc(self):
        edges = symmetrize(rmat_edges(8, 1200, seed=12))
        edges = edges[edges[:, 0] != edges[:, 1]]
        results = {}
        for policy in ("full", "incremental", "hybrid"):
            store = small_store(edges)
            engine = HybridEngine(store, ConnectedComponents(), policy=policy)
            engine.reset()
            engine.mark_inconsistent(edges)
            engine.compute()
            results[policy] = engine.values.copy()
        n = min(v.shape[0] for v in results.values())
        assert (results["full"][:n] == results["incremental"][:n]).all()
        assert (results["full"][:n] == results["hybrid"][:n]).all()


class TestEngineGuards:
    def test_max_iterations_guard(self):
        store = small_store(np.array([[0, 1], [1, 0]]))
        engine = HybridEngine(store, BFS(), EngineConfig(max_iterations=1))
        engine.reset(roots=[0])
        with pytest.raises(EngineError):
            engine.compute()

    def test_value_of_beyond_horizon(self):
        engine = HybridEngine(small_store(), BFS())
        engine.reset()
        assert np.isinf(engine.value_of(10**6))

    def test_compute_on_empty_active_set_is_noop(self):
        store = small_store(np.array([[0, 1]]))
        engine = HybridEngine(store, BFS())
        engine.reset()  # no roots
        result = engine.compute()
        assert result.n_iterations == 0

    def test_history_accumulates(self):
        store = small_store()
        engine = HybridEngine(store, BFS())
        engine.reset(roots=[0])
        engine.update_and_compute(np.array([[0, 1]]))
        engine.update_and_compute(np.array([[1, 2]]))
        assert len(engine.history) == 2
