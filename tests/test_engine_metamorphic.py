"""Seeded metamorphic properties of the hybrid engine.

Each property states a transformation of an engine run that must not
change the analytics answer:

* **Mode equivalence** — FP, IP, FP-VC, and hybrid execution compute the
  same fixed point (the LoadEdges equivalence that makes per-iteration
  mode flipping sound, paper Sec. IV).
* **Permutation invariance** — for monotone programs the final values
  depend only on the resulting graph, not on the order the update stream
  arrived in.
* **Idempotent re-run** — recomputing from a converged state (even after
  re-marking every updated vertex inconsistent) changes nothing.
* **Delete-then-reinsert round-trip** — removing edges and reinserting
  them with the same weights restores the analytics answer exactly.

Everything is seeded (no hypothesis shrinking needed): a failure names
the seed, store, and algorithm, and ``make_symmetric_edges(seed)``
rebuilds the exact graph.  Weights are a pure function of the endpoint
pair, so any stream order produces the identical weighted graph.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import GTConfig, StingerConfig
from repro.core.graphtinker import GraphTinker
from repro.engine.algorithms import BFS, SSSP, ConnectedComponents
from repro.engine.hybrid import HybridEngine
from repro.stinger import Stinger

SEEDS = [2, 23, 4242]
POLICIES = ["full", "incremental", "full_vc", "hybrid"]
ALGORITHMS = {"bfs": BFS, "sssp": SSSP, "cc": ConnectedComponents}

STORES = {
    "gt": lambda: GraphTinker(GTConfig(pagewidth=16, subblock=4, workblock=2)),
    "gt-snapshot": lambda: GraphTinker(GTConfig(
        pagewidth=16, subblock=4, workblock=2, snapshot=True)),
    "stinger": lambda: Stinger(StingerConfig(edgeblock_size=4,
                                             snapshot=True)),
}


def edge_weights(edges: np.ndarray) -> np.ndarray:
    """Order-independent weights: a pure function of the endpoints."""
    return 1.0 + (edges[:, 0] * 31 + edges[:, 1]) % 7


def make_symmetric_edges(seed: int, n_vertices: int = 40,
                         n_edges: int = 220) -> np.ndarray:
    """A unique, symmetrized edge set (CC-sound; permutation-safe)."""
    rng = np.random.default_rng(seed)
    e = np.column_stack([rng.integers(0, n_vertices, n_edges),
                         rng.integers(0, n_vertices, n_edges)]).astype(np.int64)
    return np.unique(np.vstack([e, e[:, ::-1]]), axis=0)


def run_values(store, algo: str, policy: str, root: int) -> np.ndarray:
    engine = HybridEngine(store, ALGORITHMS[algo](), policy=policy)
    if algo == "cc":
        engine.reset()
    else:
        engine.reset(roots=[root])
    engine.compute()
    return engine.values.copy()


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("store_name", sorted(STORES))
def test_mode_equivalence(store_name, seed):
    """FP == IP == FP-VC == hybrid on the same graph."""
    edges = make_symmetric_edges(seed)
    store = STORES[store_name]()
    store.insert_batch(edges, edge_weights(edges))
    root = int(edges[0, 0])
    for algo in ALGORITHMS:
        baseline = run_values(store, algo, POLICIES[0], root)
        for policy in POLICIES[1:]:
            got = run_values(store, algo, policy, root)
            assert np.array_equal(got, baseline, equal_nan=True), \
                f"seed={seed} store={store_name} algo={algo}: " \
                f"{policy} diverges from {POLICIES[0]}"


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("store_name", sorted(STORES))
def test_stream_permutation_invariance(store_name, seed):
    """Monotone analytics depend on the graph, not the arrival order."""
    edges = make_symmetric_edges(seed)
    rng = np.random.default_rng(seed + 1)
    root = int(edges[0, 0])
    results = []
    for ordering in (np.arange(edges.shape[0]),
                     rng.permutation(edges.shape[0]),
                     rng.permutation(edges.shape[0])):
        store = STORES[store_name]()
        stream = edges[ordering]
        # arrive in three batches, like a real update stream
        for chunk in np.array_split(stream, 3):
            store.insert_batch(chunk, edge_weights(chunk))
        results.append({algo: run_values(store, algo, "hybrid", root)
                        for algo in ALGORITHMS})
    for algo in ALGORITHMS:
        for i, other in enumerate(results[1:], start=1):
            assert np.array_equal(results[0][algo], other[algo],
                                  equal_nan=True), \
                f"seed={seed} store={store_name} algo={algo}: " \
                f"ordering {i} changed the fixed point"


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("store_name", sorted(STORES))
def test_idempotent_rerun_converges_immediately(store_name, seed):
    """Recomputing from a fixed point changes nothing."""
    edges = make_symmetric_edges(seed)
    store = STORES[store_name]()
    store.insert_batch(edges, edge_weights(edges))
    root = int(edges[0, 0])
    for algo in ALGORITHMS:
        engine = HybridEngine(store, ALGORITHMS[algo](), policy="hybrid")
        if algo == "cc":
            engine.reset()
        else:
            engine.reset(roots=[root])
        engine.compute()
        converged = engine.values.copy()
        # a) nothing active -> zero iterations
        again = engine.compute()
        assert again.n_iterations == 0, \
            f"seed={seed} store={store_name} algo={algo}: phantom work"
        # b) re-marking every updated vertex re-checks but changes nothing
        engine.mark_inconsistent(edges)
        rerun = engine.compute()
        assert np.array_equal(engine.values, converged, equal_nan=True), \
            f"seed={seed} store={store_name} algo={algo}: re-run moved values"
        assert all(r.n_changed == 0 for r in rerun.iterations[-1:]), \
            f"seed={seed} store={store_name} algo={algo}: did not re-converge"


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("store_name", sorted(STORES))
def test_delete_then_reinsert_round_trip(store_name, seed):
    """Deleting edges and reinserting them restores the answer exactly."""
    edges = make_symmetric_edges(seed)
    store = STORES[store_name]()
    store.insert_batch(edges, edge_weights(edges))
    root = int(edges[0, 0])
    before = {algo: run_values(store, algo, "hybrid", root)
              for algo in ALGORITHMS}
    n_before = store.n_edges

    rng = np.random.default_rng(seed + 2)
    victims = edges[rng.choice(edges.shape[0], size=edges.shape[0] // 3,
                               replace=False)]
    victims = np.unique(np.vstack([victims, victims[:, ::-1]]), axis=0)
    assert store.delete_batch(victims) == victims.shape[0]
    store.insert_batch(victims, edge_weights(victims))
    assert store.n_edges == n_before

    for algo in ALGORITHMS:
        after = run_values(store, algo, "hybrid", root)
        assert np.array_equal(after, before[algo], equal_nan=True), \
            f"seed={seed} store={store_name} algo={algo}: " \
            f"delete/reinsert round-trip changed the fixed point"
