"""Tests for the FP/IP load paths (repro.engine.modes)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import GraphTinker, GTConfig, StingerConfig
from repro.engine.modes import load_edges_full, load_edges_incremental
from repro.stinger import Stinger


def gt_store(edges, weights=None):
    gt = GraphTinker(GTConfig(pagewidth=16, subblock=4, workblock=2))
    gt.insert_batch(np.asarray(edges, dtype=np.int64), weights)
    return gt


class TestFullLoad:
    def test_returns_all_live_edges_original_ids(self):
        gt = gt_store([[100, 1], [200, 2], [100, 3]])
        src, dst, w = load_edges_full(gt)
        assert sorted(zip(src.tolist(), dst.tolist())) == [
            (100, 1), (100, 3), (200, 2)]

    def test_sequential_access_pattern_for_graphtinker(self):
        gt = gt_store([[i, i + 1] for i in range(100)])
        gt.stats.reset()
        load_edges_full(gt)
        assert gt.stats.seq_block_reads > 0
        assert gt.stats.random_block_reads == 0

    def test_random_access_pattern_for_stinger(self):
        st_ = Stinger(StingerConfig(edgeblock_size=4))
        st_.insert_batch(np.array([[i, i + 1] for i in range(100)]))
        st_.stats.reset()
        load_edges_full(st_)
        assert st_.stats.random_block_reads > 0
        assert st_.stats.seq_block_reads == 0

    def test_cell_inspection_charged_per_slot(self):
        gt = gt_store([[0, 1]])
        gt.stats.reset()
        load_edges_full(gt)
        # one CAL block holding one edge still inspects the whole block
        assert gt.stats.cells_scanned == gt.config.cal_block_size


class TestIncrementalLoad:
    def test_loads_only_active_vertices(self):
        gt = gt_store([[0, 1], [0, 2], [5, 7], [9, 1]])
        src, dst, _ = load_edges_incremental(gt, np.array([0, 9]))
        assert sorted(zip(src.tolist(), dst.tolist())) == [(0, 1), (0, 2), (9, 1)]

    def test_unknown_and_sink_vertices_skipped(self):
        gt = gt_store([[0, 1]])
        src, dst, _ = load_edges_incremental(gt, np.array([1, 12345]))
        assert src.size == 0

    def test_empty_active_set(self):
        gt = gt_store([[0, 1]])
        src, dst, w = load_edges_incremental(gt, np.empty(0, dtype=np.int64))
        assert src.size == dst.size == w.size == 0

    def test_random_access_pattern(self):
        gt = gt_store([[i % 7, i] for i in range(200)])
        gt.stats.reset()
        load_edges_incremental(gt, np.arange(7))
        assert gt.stats.random_block_reads > 0
        assert gt.stats.seq_block_reads == 0

    def test_weights_travel_with_edges(self):
        gt = gt_store([[0, 1], [0, 2]], np.array([3.5, 4.5]))
        src, dst, w = load_edges_incremental(gt, np.array([0]))
        assert dict(zip(dst.tolist(), w.tolist())) == {1: 3.5, 2: 4.5}


class TestVertexCentricLoad:
    def test_same_edge_set_as_edge_centric(self, rng):
        from repro.engine.modes import load_edges_full_vertex_centric

        edges = np.column_stack([rng.integers(0, 40, 600), rng.integers(0, 99, 600)])
        gt = gt_store(edges)
        ec = load_edges_full(gt)
        vc = load_edges_full_vertex_centric(gt)
        assert (sorted(zip(ec[0].tolist(), ec[1].tolist()))
                == sorted(zip(vc[0].tolist(), vc[1].tolist())))

    def test_vc_pays_random_reads(self):
        from repro.engine.modes import load_edges_full_vertex_centric

        gt = gt_store([[i % 9, i] for i in range(300)])
        gt.stats.reset()
        load_edges_full_vertex_centric(gt)
        assert gt.stats.random_block_reads > 0
        assert gt.stats.seq_block_reads == 0

    def test_stinger_vc_coincides_with_full(self):
        from repro.engine.modes import load_edges_full_vertex_centric

        st_ = Stinger(StingerConfig(edgeblock_size=4))
        st_.insert_batch(np.array([[0, 1], [2, 3]]))
        src, dst, _ = load_edges_full_vertex_centric(st_)
        assert sorted(zip(src.tolist(), dst.tolist())) == [(0, 1), (2, 3)]


class TestActiveSanitization:
    """``load_edges_incremental`` dedupes and validates the frontier."""

    @pytest.mark.parametrize("make", [
        lambda: gt_store([[0, 1], [0, 2], [3, 4]]),
        lambda: Stinger(StingerConfig(edgeblock_size=4)),
    ], ids=["gt", "stinger"])
    def test_duplicate_active_ids_do_not_double_gather(self, make):
        store = make()
        if store.n_edges == 0:
            store.insert_batch(np.array([[0, 1], [0, 2], [3, 4]]))
        before = store.stats.snapshot()
        src1, dst1, _ = load_edges_incremental(store, np.array([0, 3]))
        clean = store.stats.delta(before)
        before = store.stats.snapshot()
        src2, dst2, _ = load_edges_incremental(store, np.array([0, 0, 3, 0, 3]))
        duped = store.stats.delta(before)
        assert sorted(zip(src2.tolist(), dst2.tolist())) == \
            sorted(zip(src1.tolist(), dst1.tolist()))
        # Deduped charges too: the duplicate ids cost nothing extra.
        assert duped.as_dict() == clean.as_dict()

    @pytest.mark.parametrize("snapshot", [False, True], ids=["plain", "snap"])
    def test_out_of_range_and_negative_active_ids(self, snapshot):
        gt = GraphTinker(GTConfig(pagewidth=16, subblock=4, workblock=2,
                                  snapshot=snapshot))
        gt.insert_batch(np.array([[0, 1], [5, 6]]))
        st_ = Stinger(StingerConfig(edgeblock_size=4, snapshot=snapshot))
        st_.insert_batch(np.array([[0, 1], [5, 6]]))
        active = np.array([-7, -1, 0, 5, 5, 99, 10_000])
        for store in (gt, st_):
            src, dst, _ = load_edges_incremental(store, active)
            assert sorted(zip(src.tolist(), dst.tolist())) == [(0, 1), (5, 6)]

    def test_unsorted_active_output_is_sorted_by_source(self):
        gt = gt_store([[4, 1], [2, 3], [9, 9]])
        src, dst, _ = load_edges_incremental(gt, np.array([9, 2, 4]))
        assert src.tolist() == sorted(src.tolist())
        assert sorted(zip(src.tolist(), dst.tolist())) == \
            [(2, 3), (4, 1), (9, 9)]


class TestFullVCEdgeCases:
    """FULL_VC on STINGER and on empty / sink-only stores (all modes)."""

    @pytest.mark.parametrize("snapshot", [False, True], ids=["plain", "snap"])
    def test_stinger_full_vc(self, snapshot, rng):
        from repro.engine.modes import load_edges_full_vertex_centric

        st_ = Stinger(StingerConfig(edgeblock_size=4, snapshot=snapshot))
        edges = np.column_stack([rng.integers(0, 30, 300),
                                 rng.integers(0, 60, 300)])
        st_.insert_batch(edges)
        vc = load_edges_full_vertex_centric(st_)
        fp = load_edges_full(st_)
        assert (sorted(zip(vc[0].tolist(), vc[1].tolist()))
                == sorted(zip(fp[0].tolist(), fp[1].tolist())))

    @pytest.mark.parametrize("snapshot", [False, True], ids=["plain", "snap"])
    @pytest.mark.parametrize("make", [
        lambda snap: GraphTinker(GTConfig(snapshot=snap)),
        lambda snap: Stinger(StingerConfig(snapshot=snap)),
    ], ids=["gt", "stinger"])
    def test_empty_store_all_loads(self, make, snapshot):
        from repro.engine.modes import load_edges_full_vertex_centric

        store = make(snapshot)
        for triple in (
            load_edges_full(store),
            load_edges_full_vertex_centric(store),
            load_edges_incremental(store, np.array([0, 1, 2])),
            load_edges_incremental(store, np.empty(0, dtype=np.int64)),
        ):
            assert triple[0].size == triple[1].size == triple[2].size == 0

    @pytest.mark.parametrize("snapshot", [False, True], ids=["plain", "snap"])
    @pytest.mark.parametrize("make", [
        lambda snap: GraphTinker(GTConfig(snapshot=snap)),
        lambda snap: Stinger(StingerConfig(snapshot=snap)),
    ], ids=["gt", "stinger"])
    def test_sink_only_store_all_loads(self, make, snapshot):
        """Rows exist but every edge is deleted: loads must return empty."""
        from repro.engine.modes import load_edges_full_vertex_centric

        store = make(snapshot)
        store.insert_batch(np.array([[0, 1], [2, 3], [4, 5]]))
        store.delete_batch(np.array([[0, 1], [2, 3], [4, 5]]))
        assert store.n_edges == 0
        for triple in (
            load_edges_full(store),
            load_edges_full_vertex_centric(store),
            load_edges_incremental(store, np.array([0, 2, 4])),
        ):
            assert triple[0].size == 0


@settings(max_examples=30, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 20), st.integers(0, 40)),
        min_size=1, max_size=150,
    ),
    active=st.lists(st.integers(0, 25), max_size=10),
)
def test_ip_is_restriction_of_fp(edges, active):
    """Property: the IP load equals the FP load filtered to active sources."""
    gt = gt_store(edges)
    active_arr = np.asarray(sorted(set(active)), dtype=np.int64)
    fs, fd, fw = load_edges_full(gt)
    is_, id_, iw = load_edges_incremental(gt, active_arr)
    want = sorted(
        (s, d, w) for s, d, w in zip(fs.tolist(), fd.tolist(), fw.tolist())
        if s in set(active_arr.tolist())
    )
    got = sorted(zip(is_.tolist(), id_.tolist(), iw.tolist()))
    assert got == want
