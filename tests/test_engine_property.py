"""Hypothesis property tests on the engine's mode-equivalence guarantee.

The hybrid engine's soundness rests on every iteration computing the same
apply result under either load path.  These properties drive randomly
generated graphs, roots, and batch splits through all three policies and
require bit-identical property vectors — on both stores.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import GraphTinker, GTConfig, StingerConfig
from repro.engine import BFS, ConnectedComponents, HybridEngine, SSSP
from repro.stinger import Stinger
from repro.workloads.streams import symmetrize

EDGES = st.lists(
    st.tuples(st.integers(0, 30), st.integers(0, 30)),
    min_size=1, max_size=200,
).map(lambda pairs: np.asarray([(s, d) for s, d in pairs if s != d] or [(0, 1)],
                               dtype=np.int64))


def run(store_cls, program, edges, policy, roots, weights=None):
    if store_cls is GraphTinker:
        store = GraphTinker(GTConfig(pagewidth=16, subblock=4, workblock=2))
    else:
        store = Stinger(StingerConfig(edgeblock_size=4))
    store.insert_batch(edges, weights)
    engine = HybridEngine(store, program, policy=policy)
    if roots is None:
        engine.reset()
        engine.mark_inconsistent(edges)
    else:
        engine.reset(roots=roots)
    engine.compute()
    return engine.values


@settings(max_examples=30, deadline=None)
@given(edges=EDGES, root_pick=st.integers(0, 10**6))
def test_bfs_mode_equivalence(edges, root_pick):
    root = int(edges[root_pick % edges.shape[0], 0])
    results = [run(GraphTinker, BFS(), edges, policy, [root])
               for policy in ("full", "incremental", "hybrid")]
    n = min(r.shape[0] for r in results)
    for other in results[1:]:
        assert (results[0][:n] == other[:n]).all()


@settings(max_examples=20, deadline=None)
@given(edges=EDGES, root_pick=st.integers(0, 10**6), seed=st.integers(0, 100))
def test_sssp_mode_equivalence_with_weights(edges, root_pick, seed):
    weights = np.random.default_rng(seed).uniform(0.1, 5.0, edges.shape[0])
    # de-duplicate (last-wins) so every policy sees identical weights
    root = int(edges[root_pick % edges.shape[0], 0])
    results = [run(GraphTinker, SSSP(), edges, policy, [root], weights)
               for policy in ("full", "incremental", "hybrid")]
    n = min(r.shape[0] for r in results)
    for other in results[1:]:
        assert np.array_equal(results[0][:n], other[:n])


@settings(max_examples=20, deadline=None)
@given(edges=EDGES)
def test_cc_mode_equivalence(edges):
    sym = symmetrize(edges)
    results = [run(GraphTinker, ConnectedComponents(), sym, policy, None)
               for policy in ("full", "incremental", "hybrid")]
    n = min(r.shape[0] for r in results)
    for other in results[1:]:
        assert (results[0][:n] == other[:n]).all()


@settings(max_examples=15, deadline=None)
@given(edges=EDGES, root_pick=st.integers(0, 10**6))
def test_stores_agree_on_bfs(edges, root_pick):
    """GraphTinker and STINGER must produce identical analytics."""
    root = int(edges[root_pick % edges.shape[0], 0])
    gt_values = run(GraphTinker, BFS(), edges, "hybrid", [root])
    st_values = run(Stinger, BFS(), edges, "hybrid", [root])
    n = min(gt_values.shape[0], st_values.shape[0])
    assert (gt_values[:n] == st_values[:n]).all()


@settings(max_examples=15, deadline=None)
@given(edges=EDGES, root_pick=st.integers(0, 10**6),
       n_splits=st.integers(1, 5))
def test_batch_split_invariance(edges, root_pick, n_splits):
    """Incremental continuation over any batch split equals one-shot."""
    root = int(edges[root_pick % edges.shape[0], 0])
    oneshot = run(GraphTinker, BFS(), edges, "full", [root])

    store = GraphTinker(GTConfig(pagewidth=16, subblock=4, workblock=2))
    engine = HybridEngine(store, BFS(), policy="hybrid")
    engine.reset(roots=[root])
    size = max(1, edges.shape[0] // n_splits)
    for i in range(0, edges.shape[0], size):
        engine.update_and_compute(edges[i : i + size])
    n = min(oneshot.shape[0], engine.values.shape[0])
    assert (oneshot[:n] == engine.values[:n]).all()
