"""Smoke tests: every example script runs to completion.

Examples are user-facing documentation; a release with a broken example
is a broken release.  Each script runs in a subprocess with the repo's
interpreter (the slow multiprocessing demo is exercised for importability
only).
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "social_stream_components.py",
    "road_network_routing.py",
    "checkpoint_and_resume.py",
    "network_bottlenecks.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), f"{script} produced no output"


def test_all_examples_are_covered():
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(FAST_EXAMPLES) | {"parallel_updates.py"}


def test_parallel_example_importable():
    """The multiprocessing demo is slow; validate it compiles and its
    modeled-scaling section's dependencies resolve."""
    import ast

    source = (EXAMPLES_DIR / "parallel_updates.py").read_text()
    tree = ast.parse(source)
    assert any(isinstance(n, ast.FunctionDef) and n.name == "main"
               for n in tree.body)
