"""Tests for figure-data CSV export."""

import csv
import io

import pytest

from repro.bench.export import FigureData, export_insertion_figure


class TestFigureData:
    def test_csv_roundtrip(self):
        fig = FigureData("demo", "x", "y")
        fig.set_x([0, 1, 2])
        fig.add_series("a", [1.0, 2.0, 3.0])
        fig.add_series("b", [4.0, 5.0, 6.0])
        rows = list(csv.reader(io.StringIO(fig.to_csv_text())))
        assert rows[0] == ["x", "a", "b"]
        assert rows[1] == ["0", "1.0", "4.0"]
        assert rows[3] == ["2", "3.0", "6.0"]

    def test_length_mismatch_rejected(self):
        fig = FigureData("demo", "x", "y")
        fig.set_x([0, 1])
        with pytest.raises(ValueError):
            fig.add_series("a", [1.0])

    def test_duplicate_series_rejected(self):
        fig = FigureData("demo", "x", "y")
        fig.set_x([0])
        fig.add_series("a", [1.0])
        with pytest.raises(ValueError):
            fig.add_series("a", [2.0])

    def test_write_creates_file(self, tmp_path):
        fig = FigureData("myfig", "x", "y")
        fig.set_x([1])
        fig.add_series("s", [9.0])
        path = fig.write(tmp_path / "sub")
        assert path.name == "myfig.csv"
        assert "s" in path.read_text()


class TestExportInsertionFigure:
    def test_end_to_end(self, tmp_path):
        path = export_insertion_figure(tmp_path, n_batches=3)
        rows = list(csv.reader(path.open()))
        assert rows[0] == ["batch", "GT+CAL", "GT-noCAL", "STINGER"]
        assert len(rows) == 4  # header + 3 batches
        # the exported series carry the Fig. 8 ordering
        last = rows[-1]
        assert float(last[2]) > float(last[3])  # GT-noCAL > STINGER
