"""Unit tests for the GAS program definitions themselves."""

import numpy as np
import pytest

from repro.engine.algorithms import BFS, SSSP, ConnectedComponents, HeatSimulation, PageRank


class TestBFSProgram:
    def test_messages_increment_level(self):
        bfs = BFS()
        msgs = bfs.edge_messages(np.array([0.0, 2.0]), np.ones(2))
        assert msgs.tolist() == [1.0, 3.0]

    def test_seed_sets_roots_to_zero(self):
        bfs = BFS()
        values = bfs.init_state(5)
        active = bfs.seed(values, np.array([2]))
        assert values[2] == 0.0
        assert np.isinf(values[[0, 1, 3, 4]]).all()
        assert active.tolist() == [2]

    def test_inconsistent_vertices_are_sources(self):
        bfs = BFS()
        batch = np.array([[3, 4], [5, 6], [3, 7]])
        assert bfs.inconsistent_vertices(batch).tolist() == [3, 5]

    def test_apply_commits_improvements_only(self):
        bfs = BFS()
        values = np.array([0.0, 5.0, np.inf])
        vtemp = np.array([0.0, 3.0, np.inf])
        changed = bfs.apply(values, vtemp)
        assert changed.tolist() == [1]
        assert values.tolist() == [0.0, 3.0, np.inf]

    def test_message_filter_drops_unreached(self):
        bfs = BFS()
        mask = bfs.message_filter(np.array([0.0, np.inf, 2.0]))
        assert mask.tolist() == [True, False, True]


class TestSSSPProgram:
    def test_messages_add_weight(self):
        sssp = SSSP()
        msgs = sssp.edge_messages(np.array([1.0, 2.0]), np.array([0.5, 3.0]))
        assert msgs.tolist() == [1.5, 5.0]

    def test_needs_weights(self):
        assert SSSP().needs_weights


class TestCCProgram:
    def test_identity_labels(self):
        cc = ConnectedComponents()
        assert cc.init_state(4).tolist() == [0.0, 1.0, 2.0, 3.0]

    def test_grow_state_gives_new_vertices_own_labels(self):
        cc = ConnectedComponents()
        values = np.array([0.0, 0.0])  # both in component 0
        grown = cc.grow_state(values, 4)
        assert grown.tolist() == [0.0, 0.0, 2.0, 3.0]

    def test_inconsistent_vertices_are_both_endpoints(self):
        cc = ConnectedComponents()
        batch = np.array([[3, 4], [5, 6]])
        assert cc.inconsistent_vertices(batch).tolist() == [3, 4, 5, 6]

    def test_seed_activates_everything(self):
        cc = ConnectedComponents()
        values = cc.init_state(3)
        assert cc.seed(values, np.empty(0, dtype=np.int64)).tolist() == [0, 1, 2]


class TestPageRankProgram:
    def test_not_monotone(self):
        assert not PageRank().monotone

    def test_init_state_uniform(self):
        pr = PageRank()
        state = pr.init_state(4)
        assert np.allclose(state, 0.25)

    def test_grow_state_preserves_total_mass(self):
        pr = PageRank()
        state = pr.init_state(4)
        grown = pr.grow_state(state, 8)
        assert grown.shape[0] == 8
        assert np.isclose(grown.sum(), 1.0)

    def test_bad_damping(self):
        with pytest.raises(ValueError):
            PageRank(damping=1.5)

    def test_messages_divide_by_outdeg(self):
        pr = PageRank()
        values = np.array([0.5, 0.5])
        src = np.array([0, 0, 1])
        pr.begin_iteration(values, src, src)
        msgs = pr.edge_messages(values[src], np.ones(3), src)
        assert np.allclose(msgs, [0.25, 0.25, 0.5])


class TestHeatProgram:
    def test_not_monotone(self):
        assert not HeatSimulation().monotone

    def test_sources_pinned(self):
        heat = HeatSimulation(n_steps=2)
        values = heat.init_state(3)
        heat.seed(values, np.array([0]))
        assert values[0] == 1.0

    def test_fixed_step_termination(self):
        heat = HeatSimulation(n_steps=3)
        values = heat.init_state(2)
        heat.seed(values, np.array([0]))
        src = np.array([0])
        for step in range(3):
            heat.begin_iteration(values, src, np.array([1]))
            vtemp = heat.make_vtemp(values)
            heat.scatter_reduce(vtemp, np.array([1]), values[src])
            active = heat.apply(values, vtemp)
        assert active.size == 0  # terminated after n_steps

    def test_bad_params(self):
        with pytest.raises(ValueError):
            HeatSimulation(alpha=0.0)
        with pytest.raises(ValueError):
            HeatSimulation(n_steps=0)

    def test_diffusion_moves_toward_source(self):
        heat = HeatSimulation(alpha=0.5, n_steps=5)
        values = heat.init_state(2)
        heat.seed(values, np.array([0]))
        src, dst = np.array([0]), np.array([1])
        for _ in range(5):
            heat.begin_iteration(values, src, dst)
            vtemp = heat.make_vtemp(values)
            heat.scatter_reduce(vtemp, dst, values[src])
            heat.apply(values, vtemp)
        assert 0.9 < values[1] <= 1.0
