"""Unit + integration tests for the GraphTinker facade."""

import numpy as np
import pytest

from repro import GraphTinker, GTConfig
from repro.errors import VertexNotFoundError

from tests.reference import ReferenceGraph, assert_store_matches


class TestBasicOperations:
    def test_insert_new_edge(self, small_config):
        gt = GraphTinker(small_config)
        assert gt.insert_edge(1, 2, 3.0)
        assert gt.has_edge(1, 2)
        assert gt.edge_weight(1, 2) == 3.0
        assert gt.n_edges == 1

    def test_duplicate_is_weight_update(self, small_config):
        gt = GraphTinker(small_config)
        gt.insert_edge(1, 2, 3.0)
        assert not gt.insert_edge(1, 2, 5.0)
        assert gt.edge_weight(1, 2) == 5.0
        assert gt.n_edges == 1
        assert gt.degree(1) == 1

    def test_delete(self, small_config):
        gt = GraphTinker(small_config)
        gt.insert_edge(1, 2)
        assert gt.delete_edge(1, 2)
        assert not gt.has_edge(1, 2)
        assert gt.n_edges == 0
        assert not gt.delete_edge(1, 2)  # already gone

    def test_delete_unknown_vertex(self, small_config):
        gt = GraphTinker(small_config)
        assert not gt.delete_edge(99, 1)

    def test_queries_on_unknown_vertex(self, small_config):
        gt = GraphTinker(small_config)
        assert not gt.has_edge(4, 5)
        assert gt.edge_weight(4, 5) is None
        assert gt.degree(4) == 0
        with pytest.raises(VertexNotFoundError):
            gt.neighbors(4)

    def test_self_loop_allowed(self, small_config):
        gt = GraphTinker(small_config)
        assert gt.insert_edge(3, 3)
        assert gt.has_edge(3, 3)

    def test_neighbors(self, small_config):
        gt = GraphTinker(small_config)
        for d in (5, 9, 13):
            gt.insert_edge(2, d, float(d))
        dst, w = gt.neighbors(2)
        assert sorted(dst.tolist()) == [5, 9, 13]
        assert dict(zip(dst.tolist(), w.tolist())) == {5: 5.0, 9: 9.0, 13: 13.0}


class TestSGHIntegration:
    def test_sparse_source_ids_stay_dense_internally(self, small_config):
        """The paper's motivating example: sources 34 and 22789 must land
        in adjacent main-region rows, not 22755 rows apart."""
        gt = GraphTinker(small_config)
        gt.insert_edge(34, 1)
        gt.insert_edge(22789, 1)
        assert gt.eba.main.n_used == 2
        assert gt.dense_id(34) == 0
        assert gt.dense_id(22789) == 1
        assert gt.original_id(1) == 22789

    def test_sgh_disabled_uses_raw_ids(self):
        gt = GraphTinker(GTConfig(pagewidth=16, subblock=4, workblock=2,
                                  enable_sgh=False))
        gt.insert_edge(0, 1)
        gt.insert_edge(37, 1)
        assert gt.eba.main.n_used == 38  # sparse rows: the cost SGH avoids
        assert gt.has_edge(37, 1)

    def test_dense_id_unknown_raises(self, small_config):
        gt = GraphTinker(small_config)
        with pytest.raises(VertexNotFoundError):
            gt.dense_id(5)


class TestCALIntegration:
    def test_cal_tracks_inserts_and_deletes(self, small_config):
        gt = GraphTinker(small_config)
        for d in range(20):
            gt.insert_edge(0, d)
        for d in range(0, 20, 2):
            gt.delete_edge(0, d)
        assert gt.cal.n_edges == gt.n_edges == 10
        src, dst, _ = gt.edge_arrays()
        assert sorted(dst.tolist()) == list(range(1, 20, 2))

    def test_cal_weight_follows_update(self, small_config):
        gt = GraphTinker(small_config)
        gt.insert_edge(3, 4, 1.0)
        gt.insert_edge(3, 4, 8.0)
        _, dst, w = gt.edge_arrays()
        assert w.tolist() == [8.0]

    def test_cal_disabled_falls_back_to_eba_sweep(self):
        gt = GraphTinker(GTConfig(pagewidth=16, subblock=4, workblock=2,
                                  enable_cal=False))
        for d in range(10):
            gt.insert_edge(1, d)
        assert gt.cal is None
        src, dst, _ = gt.edge_arrays()
        assert sorted(dst.tolist()) == list(range(10))

    def test_analytics_edges_original_ids(self, small_config):
        gt = GraphTinker(small_config)
        gt.insert_edge(500, 2)
        gt.insert_edge(900, 3)
        src, dst, _ = gt.analytics_edges()
        assert sorted(src.tolist()) == [500, 900]


class TestCompactModeCAL:
    """Delete-and-compact must keep the CAL dense and pointers coherent."""

    def _compact_gt(self):
        return GraphTinker(
            GTConfig(pagewidth=16, subblock=4, workblock=2,
                     compact_on_delete=True, cal_group_width=8, cal_block_size=8)
        )

    def test_cal_blocks_shrink_under_deletion(self):
        gt = self._compact_gt()
        for d in range(200):
            gt.insert_edge(0, d)
        blocks_before = gt.cal.n_blocks
        for d in range(200):
            gt.delete_edge(0, d)
        assert gt.cal.n_blocks == 0
        assert blocks_before > 0

    def test_pointers_remain_coherent_under_churn(self, rng):
        gt = self._compact_gt()
        ref = {}
        for i in range(3000):
            s, d = int(rng.integers(0, 20)), int(rng.integers(0, 80))
            if rng.random() < 0.6:
                gt.insert_edge(s, d, float(i))
                ref[(s, d)] = float(i)
            else:
                gt.delete_edge(s, d)
                ref.pop((s, d), None)
        gt.check_invariants()
        for (s, d), w in list(ref.items())[:300]:
            dense = gt.dense_id(s)
            loc = gt.eba.find(dense, d)
            cb, cs = gt.eba.get_cal_pointer(loc)
            assert gt.cal.read_slot(cb, cs) == (dense, d, w)

    def test_streaming_matches_contents_after_deletions(self, rng):
        gt = self._compact_gt()
        edges = np.column_stack([rng.integers(0, 15, 800), rng.integers(0, 50, 800)])
        gt.insert_batch(edges)
        gt.delete_batch(edges[::2])
        src, dst, _ = gt.edge_arrays()
        got = set(zip(gt.original_ids(src).tolist(), dst.tolist()))
        expected = {tuple(e) for e in edges.tolist()} - {tuple(e) for e in edges[::2].tolist()}
        assert got == expected


class TestBatchOperations:
    def test_insert_batch_counts_new(self, small_config, random_edges):
        gt = GraphTinker(small_config)
        new = gt.insert_batch(random_edges)
        distinct = len({(s, d) for s, d in random_edges.tolist()})
        assert new == distinct == gt.n_edges

    def test_insert_batch_shape_check(self, small_config):
        gt = GraphTinker(small_config)
        with pytest.raises(ValueError):
            gt.insert_batch(np.zeros((3, 3), dtype=np.int64))

    def test_delete_batch(self, small_config, random_edges):
        gt = GraphTinker(small_config)
        gt.insert_batch(random_edges)
        deleted = gt.delete_batch(random_edges[:500])
        distinct = len({(s, d) for s, d in random_edges[:500].tolist()})
        assert deleted == distinct

    def test_batch_with_weights(self, small_config):
        gt = GraphTinker(small_config)
        edges = np.array([[0, 1], [0, 2]])
        gt.insert_batch(edges, np.array([2.0, 4.0]))
        assert gt.edge_weight(0, 1) == 2.0
        assert gt.edge_weight(0, 2) == 4.0


class TestAgainstReference:
    @pytest.mark.parametrize("compact", [False, True])
    def test_randomized_mixed_workload(self, compact, rng):
        cfg = GTConfig(pagewidth=16, subblock=4, workblock=2,
                       compact_on_delete=compact,
                       cal_group_width=8, cal_block_size=8)
        gt = GraphTinker(cfg)
        ref = ReferenceGraph()
        for _ in range(4000):
            op = rng.random()
            s = int(rng.integers(0, 40))
            d = int(rng.integers(0, 120))
            if op < 0.65:
                w = float(rng.random())
                assert gt.insert_edge(s, d, w) == ref.insert_edge(s, d, w)
            else:
                assert gt.delete_edge(s, d) == ref.delete_edge(s, d)
        gt.check_invariants()
        assert_store_matches(gt, ref)

    def test_paper_geometry_workload(self, rng):
        gt = GraphTinker(GTConfig())
        ref = ReferenceGraph()
        src = rng.integers(0, 100, 5000)
        dst = rng.integers(0, 1000, 5000)
        for s, d in zip(src.tolist(), dst.tolist()):
            assert gt.insert_edge(s, d) == ref.insert_edge(s, d)
        gt.check_invariants()
        assert_store_matches(gt, ref)


class TestDiagnostics:
    def test_memory_blocks_keys(self, small_config):
        gt = GraphTinker(small_config)
        gt.insert_edge(0, 1)
        blocks = gt.memory_blocks()
        assert set(blocks) == {"main_edgeblocks", "overflow_edgeblocks", "cal_blocks"}

    def test_check_invariants_preserves_stats(self, small_config):
        gt = GraphTinker(small_config)
        for d in range(50):
            gt.insert_edge(0, d)
        before = gt.stats.as_dict()
        gt.check_invariants()
        assert gt.stats.as_dict() == before

    def test_stats_count_inserts(self, small_config):
        gt = GraphTinker(small_config)
        for d in range(10):
            gt.insert_edge(0, d)
        assert gt.stats.edges_inserted == 10
        assert gt.stats.workblock_fetches > 0
        assert gt.stats.cal_updates == 10
