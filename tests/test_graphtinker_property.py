"""Hypothesis stateful tests: GraphTinker vs the reference oracle.

A state machine drives random insert/delete/query sequences against both
GraphTinker (in several configurations) and the dict-of-dicts reference;
any divergence in return values or final content is a bug.  This is the
suite that originally caught the FIND-before-INSERT ordering defect (see
EdgeblockArray.insert's docstring).
"""

import numpy as np
import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro import GraphTinker, GTConfig
from tests.reference import ReferenceGraph, assert_store_matches

# Small id spaces maximise collision / duplicate / branch-out coverage.
SRC = st.integers(min_value=0, max_value=12)
DST = st.integers(min_value=0, max_value=40)
WEIGHT = st.floats(min_value=0.0, max_value=10.0, allow_nan=False)


class _GraphTinkerMachine(RuleBasedStateMachine):
    CONFIG: GTConfig

    def __init__(self):
        super().__init__()
        self.gt = GraphTinker(self.CONFIG)
        self.ref = ReferenceGraph()
        self.op_count = 0

    @rule(src=SRC, dst=DST, weight=WEIGHT)
    def insert(self, src, dst, weight):
        assert self.gt.insert_edge(src, dst, weight) == self.ref.insert_edge(src, dst, weight)
        self.op_count += 1

    @rule(src=SRC, dst=DST)
    def delete(self, src, dst):
        assert self.gt.delete_edge(src, dst) == self.ref.delete_edge(src, dst)
        self.op_count += 1

    @rule(src=SRC, dst=DST)
    def query(self, src, dst):
        assert self.gt.has_edge(src, dst) == self.ref.has_edge(src, dst)
        expected = self.ref.edge_weight(src, dst)
        got = self.gt.edge_weight(src, dst)
        if expected is None:
            assert got is None
        else:
            assert got == pytest.approx(expected)

    @rule(src=SRC)
    def degree(self, src):
        assert self.gt.degree(src) == self.ref.degree(src)

    @invariant()
    def edge_count_matches(self):
        assert self.gt.n_edges == self.ref.n_edges

    def teardown(self):
        self.gt.check_invariants()
        assert_store_matches(self.gt, self.ref)


class TestDefaultConfigMachine(_GraphTinkerMachine.TestCase):
    pass


_GraphTinkerMachine.CONFIG = GTConfig(
    pagewidth=16, subblock=4, workblock=2, cal_group_width=4, cal_block_size=4
)
TestDefaultConfigMachine.settings = settings(max_examples=40, stateful_step_count=60)


class _CompactMachine(_GraphTinkerMachine):
    CONFIG = GTConfig(
        pagewidth=16, subblock=4, workblock=2, compact_on_delete=True,
        cal_group_width=4, cal_block_size=4,
    )


class TestCompactConfigMachine(_CompactMachine.TestCase):
    pass


TestCompactConfigMachine.settings = settings(max_examples=40, stateful_step_count=60)


class _NoFeaturesMachine(_GraphTinkerMachine):
    CONFIG = GTConfig(
        pagewidth=8, subblock=4, workblock=2, enable_sgh=False, enable_cal=False
    )


class TestNoFeaturesMachine(_NoFeaturesMachine.TestCase):
    pass


TestNoFeaturesMachine.settings = settings(max_examples=25, stateful_step_count=50)


class _TinySubblockMachine(_GraphTinkerMachine):
    """Pagewidth == subblock: a single subblock per block, deep trees."""

    CONFIG = GTConfig(pagewidth=4, subblock=4, workblock=2, cal_group_width=2,
                      cal_block_size=2)


class TestTinySubblockMachine(_TinySubblockMachine.TestCase):
    pass


TestTinySubblockMachine.settings = settings(max_examples=25, stateful_step_count=50)
