"""Tests for the shared experiment harness."""

import numpy as np
import pytest

from repro.bench.harness import (
    AnalyticsMeasurement,
    analytics_after_each_batch,
    analytics_once,
    deletion_run,
    insertion_run,
    make_store,
    parallel_insertion_run,
)
from repro.core.parallel import PartitionedGraphTinker
from repro.core.config import GTConfig
from repro.engine.algorithms import BFS
from repro.workloads import rmat_edges
from repro.workloads.streams import EdgeStream


@pytest.fixture(scope="module")
def edges():
    e = rmat_edges(9, 6000, seed=8)
    return e[e[:, 0] != e[:, 1]]


class TestMakeStore:
    def test_feature_toggles(self):
        assert make_store("graphtinker").cal is not None
        assert make_store("gt_nocal").cal is None
        assert make_store("gt_nosgh").sgh is None
        plain = make_store("gt_plain")
        assert plain.cal is None and plain.sgh is None
        from repro.stinger import Stinger

        assert isinstance(make_store("stinger"), Stinger)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_store("bogus")


class TestInsertionRun:
    def test_measurements_per_batch(self, edges):
        store = make_store("graphtinker", GTConfig(pagewidth=16, subblock=4, workblock=2))
        stream = EdgeStream(edges, 1500)
        ms = insertion_run(store, stream)
        assert len(ms) == stream.n_batches
        assert sum(m.n_edges for m in ms) == edges.shape[0]
        assert store.n_edges > 0
        assert all(m.stats_delta.workblock_fetches > 0 for m in ms)


class TestDeletionRun:
    def test_empties_store(self, edges):
        store = make_store("graphtinker", GTConfig(pagewidth=16, subblock=4, workblock=2))
        store.insert_batch(edges)
        stream = EdgeStream(edges, 2000)
        ms = deletion_run(store, stream)
        assert store.n_edges == 0
        assert len(ms) == stream.n_batches


class TestAnalyticsProtocols:
    def test_after_each_batch(self, edges):
        store = make_store("graphtinker", GTConfig(pagewidth=16, subblock=4, workblock=2))
        stream = EdgeStream(edges[:3000], 1000)
        root = int(edges[0, 0])
        ms = analytics_after_each_batch(store, stream, BFS, "hybrid", roots=[root])
        assert len(ms) == 3
        assert all(isinstance(m, AnalyticsMeasurement) for m in ms)
        assert ms[-1].edges_processed > 0
        assert ms[-1].iterations > 0

    def test_analytics_once_policies_agree_on_work_shape(self, edges):
        store = make_store("graphtinker", GTConfig(pagewidth=16, subblock=4, workblock=2))
        store.insert_batch(edges)
        root = int(edges[0, 0])
        fp = analytics_once(store, BFS, "full", roots=[root])
        ip = analytics_once(store, BFS, "incremental", roots=[root])
        # FP processes all edges every iteration; IP only frontier edges.
        assert fp.edges_processed > ip.edges_processed
        # FP loads are sequential (CAL); IP loads are random (EBA).
        assert fp.stats_delta.seq_block_reads > 0
        assert ip.stats_delta.seq_block_reads == 0
        assert ip.stats_delta.random_block_reads > 0


class TestParallelRun:
    def test_partition_makespan_monotone_in_cores(self, edges):
        stream = EdgeStream(edges, 2000)
        makespans = {}
        for cores in (1, 4):
            store = PartitionedGraphTinker(
                cores, GTConfig(pagewidth=16, subblock=4, workblock=2)
            )
            ms = parallel_insertion_run(store, stream)
            makespans[cores] = sum(m.makespan_cost() for m in ms)
        assert makespans[4] < makespans[1]
