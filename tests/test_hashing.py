"""Unit + property tests for the hash-mixer family."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.hashing import (
    initial_bucket,
    mix64,
    mix64_array,
    partition_of,
    partition_of_array,
    subblock_index,
)


class TestMix64:
    def test_deterministic(self):
        assert mix64(12345) == mix64(12345)
        assert mix64(12345, seed=1) == mix64(12345, seed=1)

    def test_seed_changes_output(self):
        assert mix64(12345, seed=0) != mix64(12345, seed=1)

    @given(st.integers(min_value=0, max_value=2**62), st.integers(min_value=0, max_value=2**32))
    def test_range(self, value, seed):
        h = mix64(value, seed)
        assert 0 <= h < 2**64

    def test_avalanche_neighbouring_inputs(self):
        # Adjacent inputs should land far apart: no long identical prefix
        # runs in a small modulus.
        mods = [mix64(v) % 64 for v in range(1000)]
        counts = np.bincount(mods, minlength=64)
        # roughly uniform: no bucket more than 3x the expected share
        assert counts.max() < 3 * (1000 / 64)

    @given(st.lists(st.integers(min_value=0, max_value=2**61), min_size=1, max_size=200),
           st.integers(min_value=0, max_value=2**31))
    def test_vectorised_matches_scalar(self, values, seed):
        arr = np.asarray(values, dtype=np.int64)
        vec = mix64_array(arr, seed)
        for v, got in zip(values, vec.tolist()):
            assert got == mix64(v, seed)


class TestDerivedHashes:
    @given(st.integers(min_value=0, max_value=2**32), st.integers(min_value=0, max_value=40))
    def test_subblock_index_in_range(self, dst, gen):
        idx = subblock_index(dst, gen, 8, seed=0x9E3779B9)
        assert 0 <= idx < 8

    @given(st.integers(min_value=0, max_value=2**32), st.integers(min_value=0, max_value=40))
    def test_initial_bucket_in_range(self, dst, gen):
        b = initial_bucket(dst, gen, 8, seed=0x9E3779B9)
        assert 0 <= b < 8

    def test_generations_decorrelate(self):
        """Tree-Based Hashing relies on re-randomised Subblock choices
        across generations: a cohort congesting one parent Subblock must
        spread across the child's Subblocks."""
        n_sb = 8
        cohort = [d for d in range(5000) if subblock_index(d, 0, n_sb, 7) == 3][:256]
        child_sbs = {subblock_index(d, 1, n_sb, 7) for d in cohort}
        assert len(child_sbs) == n_sb  # full fan-out

    def test_partition_stability(self):
        assert partition_of(42, 4) == partition_of(42, 4)

    @given(st.lists(st.integers(min_value=0, max_value=2**40), min_size=1, max_size=300),
           st.integers(min_value=1, max_value=16))
    def test_partition_array_matches_scalar(self, srcs, nparts):
        arr = np.asarray(srcs, dtype=np.int64)
        parts = partition_of_array(arr, nparts)
        assert ((parts >= 0) & (parts < nparts)).all()
        for s, p in zip(srcs, parts.tolist()):
            assert p == partition_of(s, nparts)

    def test_partition_balance(self):
        parts = partition_of_array(np.arange(10000), 8)
        counts = np.bincount(parts, minlength=8)
        assert counts.min() > 10000 / 8 * 0.8
        assert counts.max() < 10000 / 8 * 1.2
