"""End-to-end heat-simulation runs through the hybrid engine."""

import numpy as np
import pytest

from repro import GraphTinker, GTConfig
from repro.engine import HeatSimulation, HybridEngine
from repro.errors import EngineError


def grid_edges(n):
    """Directed chain 0 -> 1 -> ... -> n-1."""
    return np.column_stack([np.arange(n - 1), np.arange(1, n)])


class TestHeatViaEngine:
    def test_diffusion_along_chain(self):
        store = GraphTinker(GTConfig(pagewidth=16, subblock=4, workblock=2))
        store.insert_batch(grid_edges(6))
        heat = HeatSimulation(alpha=0.5, n_steps=30)
        engine = HybridEngine(store, heat, policy="full")
        engine.reset(roots=[0])
        result = engine.compute()
        assert result.n_iterations == 30  # fixed-step termination
        values = engine.values
        assert values[0] == 1.0  # pinned source
        # temperature decays monotonically with distance from the source
        for a, b in zip(values[:5], values[1:6]):
            assert a >= b - 1e-12
        assert values[1] > 0.9  # near the source: nearly source temperature

    def test_incremental_policy_rejected(self):
        store = GraphTinker(GTConfig(pagewidth=16, subblock=4, workblock=2))
        store.insert_batch(grid_edges(3))
        with pytest.raises(EngineError):
            HybridEngine(store, HeatSimulation(), policy="incremental")

    def test_hybrid_policy_pins_full_mode(self):
        store = GraphTinker(GTConfig(pagewidth=16, subblock=4, workblock=2))
        store.insert_batch(grid_edges(4))
        engine = HybridEngine(store, HeatSimulation(n_steps=3), policy="hybrid")
        engine.reset(roots=[0])
        result = engine.compute()
        assert set(result.modes_used()) == {"FP"}

    def test_isolated_vertex_keeps_temperature(self):
        store = GraphTinker(GTConfig(pagewidth=16, subblock=4, workblock=2))
        store.insert_batch(np.array([[0, 1], [5, 6]]))
        engine = HybridEngine(store, HeatSimulation(n_steps=5), policy="full")
        engine.reset(roots=[0])
        engine.compute()
        # vertex 5 has no in-edges: it stays at its initial temperature
        assert engine.value_of(5) == 0.0
        assert engine.value_of(1) > 0.0
