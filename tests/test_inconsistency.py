"""Tests for the Set-Inconsistency-Vertices unit (paper Sec. IV.C)."""

import numpy as np
import pytest

from repro.engine.algorithms import BFS, SSSP, ConnectedComponents
from repro.engine.inconsistency import inconsistent_vertices


class TestDirectedPrograms:
    """Paper: 'in the BFS algorithm, the vertices affected by the update
    batch comprise the source vertices of the edges in the update batch'."""

    @pytest.mark.parametrize("program_cls", [BFS, SSSP])
    def test_sources_only(self, program_cls):
        batch = np.array([[3, 4], [5, 6], [3, 9]])
        out = inconsistent_vertices(program_cls(), batch)
        assert out.tolist() == [3, 5]

    def test_deduplicated_and_sorted(self):
        batch = np.array([[9, 1], [2, 1], [9, 2], [2, 3]])
        out = inconsistent_vertices(BFS(), batch)
        assert out.tolist() == [2, 9]


class TestUndirectedPrograms:
    """Paper: for weakly-connected components the inconsistency vertices
    'comprise both the source and destination vertices'."""

    def test_both_endpoints(self):
        batch = np.array([[3, 4], [5, 6]])
        out = inconsistent_vertices(ConnectedComponents(), batch)
        assert out.tolist() == [3, 4, 5, 6]

    def test_shared_endpoints_deduplicated(self):
        batch = np.array([[1, 2], [2, 3], [3, 1]])
        out = inconsistent_vertices(ConnectedComponents(), batch)
        assert out.tolist() == [1, 2, 3]


class TestShapes:
    def test_empty_batch(self):
        out = inconsistent_vertices(BFS(), np.empty((0, 2), dtype=np.int64))
        assert out.size == 0

    def test_flat_batch_reshaped(self):
        out = inconsistent_vertices(BFS(), np.array([7, 8]))
        assert out.tolist() == [7]

    def test_single_edge(self):
        out = inconsistent_vertices(ConnectedComponents(), np.array([[4, 4]]))
        assert out.tolist() == [4]
