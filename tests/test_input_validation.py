"""Failure-injection / input-validation tests across the public surface.

Negative vertex ids collide with the -1/-2 cell-state sentinels, so the
stores must reject them before any structure is touched; these tests also
verify that a rejected operation mid-batch leaves the structures fully
consistent (operations are per-edge atomic).
"""

import numpy as np
import pytest

from repro import GraphTinker, GTConfig, StingerConfig
from repro.stinger import Stinger


@pytest.fixture(params=["gt", "stinger"])
def store(request, small_config, stinger_config):
    if request.param == "gt":
        return GraphTinker(small_config)
    return Stinger(stinger_config)


class TestNegativeIds:
    @pytest.mark.parametrize("src,dst", [(-1, 0), (0, -1), (-2, -2), (-5, 3)])
    def test_insert_rejected(self, store, src, dst):
        with pytest.raises(ValueError):
            store.insert_edge(src, dst)
        assert store.n_edges == 0

    def test_batch_rejected_atomically_before_any_write(self, store):
        bad = np.array([[0, 1], [2, -3], [4, 5]])
        with pytest.raises(ValueError):
            store.insert_batch(bad)
        # validation happens up front: nothing was inserted
        assert store.n_edges == 0

    def test_sentinel_collision_would_be_silent_without_guard(self, small_config):
        """Documents why the guard exists: dst == -1 is the EMPTY marker."""
        from repro.core.pool import EMPTY

        assert int(EMPTY) == -1


class TestStateAfterRejection:
    def test_store_usable_after_rejected_insert(self, store):
        with pytest.raises(ValueError):
            store.insert_edge(-1, 2)
        assert store.insert_edge(1, 2)
        assert store.has_edge(1, 2)
        store.check_invariants()

    def test_partial_batch_failure_leaves_prior_edges_intact(self, store):
        store.insert_batch(np.array([[0, 1], [2, 3]]))
        with pytest.raises(ValueError):
            store.insert_batch(np.array([[4, 5], [-1, 6]]))
        assert store.has_edge(0, 1) and store.has_edge(2, 3)
        store.check_invariants()


class TestShapeValidation:
    @pytest.mark.parametrize("shape", [(3,), (3, 3), (0, 1)])
    def test_bad_batch_shapes(self, store, shape):
        with pytest.raises(ValueError):
            store.insert_batch(np.zeros(shape, dtype=np.int64))

    def test_empty_batch_is_fine(self, store):
        assert store.insert_batch(np.empty((0, 2), dtype=np.int64)) == 0
