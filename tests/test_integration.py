"""Cross-implementation and end-to-end integration tests.

GraphTinker and STINGER must expose identical graph contents after
identical update streams (DESIGN.md §5), and the full paper protocol —
batched load + analytics after every batch, on every store and policy —
must run end-to-end on a real (scaled) dataset.
"""

import numpy as np
import pytest

from repro import GraphTinker, GTConfig, StingerConfig
from repro.engine import BFS, ConnectedComponents, HybridEngine, SSSP
from repro.stinger import Stinger
from repro.workloads import load_dataset
from repro.workloads.streams import EdgeStream, highest_degree_roots, symmetrize


@pytest.fixture(scope="module")
def dataset():
    _, edges = load_dataset("rmat_1m_10m", factor=0.0005)
    return edges


class TestCrossImplementation:
    def test_identical_contents_after_identical_streams(self, dataset, rng):
        gt = GraphTinker(GTConfig(pagewidth=16, subblock=4, workblock=2))
        st = Stinger(StingerConfig(edgeblock_size=4))
        weights = rng.random(dataset.shape[0])
        gt.insert_batch(dataset, weights)
        st.insert_batch(dataset, weights)
        assert gt.n_edges == st.n_edges
        # delete a third through both, same order
        doomed = dataset[::3]
        assert gt.delete_batch(doomed) == st.delete_batch(doomed)
        gt_edges = sorted(gt.edges())
        st_edges = sorted(st.edges())
        assert gt_edges == st_edges

    def test_identical_analytics_results(self, dataset):
        results = {}
        for name, store in (
            ("gt", GraphTinker(GTConfig(pagewidth=16, subblock=4, workblock=2))),
            ("stinger", Stinger(StingerConfig(edgeblock_size=4))),
        ):
            store.insert_batch(dataset)
            engine = HybridEngine(store, BFS(), policy="hybrid")
            root = int(highest_degree_roots(dataset, 1)[0])
            engine.reset(roots=[root])
            engine.compute()
            results[name] = engine.values
        n = min(v.shape[0] for v in results.values())
        assert (results["gt"][:n] == results["stinger"][:n]).all()


class TestPaperProtocolEndToEnd:
    """The Sec. V.B loop on a scaled Table 1 dataset."""

    def test_batched_load_with_analytics(self, dataset):
        store = GraphTinker(GTConfig())
        stream = EdgeStream(dataset, max(1, dataset.shape[0] // 4))
        root = int(highest_degree_roots(dataset, 1)[0])
        engine = HybridEngine(store, BFS(), policy="hybrid")
        engine.reset(roots=[root])
        total_processed = 0
        for batch in stream.insert_batches():
            result = engine.update_and_compute(batch)
            total_processed += result.edges_processed
        assert store.n_edges == dataset.shape[0]
        assert total_processed > 0
        store.check_invariants()

    def test_full_delete_cycle_with_analytics(self, dataset):
        for compact in (False, True):
            store = GraphTinker(
                GTConfig(pagewidth=16, subblock=4, workblock=2,
                         compact_on_delete=compact)
            )
            store.insert_batch(dataset)
            stream = EdgeStream(dataset, max(1, dataset.shape[0] // 3))
            root = int(highest_degree_roots(dataset, 1)[0])
            for batch in stream.delete_batches(seed=1):
                store.delete_batch(batch)
                engine = HybridEngine(store, BFS(), policy="full")
                engine.reset(roots=[root])
                engine.compute()
            assert store.n_edges == 0
            store.check_invariants()

    @pytest.mark.parametrize("program_cls", [BFS, SSSP, ConnectedComponents])
    def test_all_benchmark_algorithms_run(self, dataset, program_cls):
        edges = symmetrize(dataset) if program_cls is ConnectedComponents else dataset
        store = GraphTinker(GTConfig(pagewidth=16, subblock=4, workblock=2))
        store.insert_batch(edges)
        engine = HybridEngine(store, program_cls(), policy="hybrid")
        if program_cls is ConnectedComponents:
            engine.reset()
            engine.mark_inconsistent(edges)
        else:
            engine.reset(roots=[int(edges[0, 0])])
        result = engine.compute()
        assert result.edges_processed > 0


class TestScaleStress:
    def test_paper_geometry_hollywood_prefix(self):
        """A denser (hollywood-like) slice at the paper's geometry."""
        _, edges = load_dataset("hollywood_like", factor=0.001)
        store = GraphTinker(GTConfig())
        store.insert_batch(edges)
        assert store.n_edges == edges.shape[0] == store.cal.n_edges
        store.check_invariants()
