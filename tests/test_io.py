"""Tests for edge-list and MatrixMarket I/O."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.io import read_edge_list, read_mtx, write_edge_list, write_mtx


class TestEdgeList:
    def test_roundtrip_unweighted(self, tmp_path):
        path = tmp_path / "e.txt"
        edges = np.array([[0, 1], [2, 3]])
        write_edge_list(path, edges)
        got, w = read_edge_list(path)
        assert (got == edges).all()
        assert w is None

    def test_roundtrip_weighted(self, tmp_path):
        path = tmp_path / "e.txt"
        edges = np.array([[0, 1], [2, 3]])
        weights = np.array([1.5, 2.25])
        write_edge_list(path, edges, weights)
        got, w = read_edge_list(path)
        assert (got == edges).all()
        assert np.allclose(w, weights)

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "e.txt"
        path.write_text("# header\n\n% other comment\n1 2\n3 4\n")
        got, w = read_edge_list(path)
        assert got.tolist() == [[1, 2], [3, 4]]

    def test_malformed_field_count(self, tmp_path):
        path = tmp_path / "e.txt"
        path.write_text("1 2 3 4\n")
        with pytest.raises(WorkloadError):
            read_edge_list(path)

    def test_inconsistent_weights(self, tmp_path):
        path = tmp_path / "e.txt"
        path.write_text("1 2\n1 2 3.0\n")
        with pytest.raises(WorkloadError):
            read_edge_list(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "e.txt"
        path.write_text("")
        got, w = read_edge_list(path)
        assert got.shape == (0, 2)


class TestEdgeListValidation:
    def test_nan_ids_rejected_with_line_number(self, tmp_path):
        path = tmp_path / "e.txt"
        path.write_text("0 1\nnan 2\n")
        with pytest.raises(WorkloadError, match=r"e\.txt:2"):
            read_edge_list(path)

    def test_negative_ids_rejected(self, tmp_path):
        path = tmp_path / "e.txt"
        path.write_text("0 1\n2 -5\n")
        with pytest.raises(WorkloadError, match="negative"):
            read_edge_list(path)

    def test_float_ids_rejected(self, tmp_path):
        path = tmp_path / "e.txt"
        path.write_text("0 1\n1.5 2\n")
        with pytest.raises(WorkloadError):
            read_edge_list(path)

    def test_max_vertex_bound(self, tmp_path):
        path = tmp_path / "e.txt"
        path.write_text("0 1\n2 9\n")
        read_edge_list(path, max_vertex=10)
        with pytest.raises(WorkloadError, match="outside"):
            read_edge_list(path, max_vertex=9)


class TestMtx:
    def test_roundtrip_general(self, tmp_path):
        path = tmp_path / "g.mtx"
        edges = np.array([[0, 1], [2, 0]])
        write_mtx(path, edges, n_vertices=3)
        got = read_mtx(path)
        assert sorted(map(tuple, got.tolist())) == [(0, 1), (2, 0)]

    def test_symmetric_expansion(self, tmp_path):
        """UF-collection symmetric matrices expand to both directions."""
        path = tmp_path / "s.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern symmetric\n"
            "3 3 2\n"
            "2 1\n"
            "3 3\n"
        )
        got = read_mtx(path)
        assert sorted(map(tuple, got.tolist())) == [(0, 1), (1, 0), (2, 2)]

    def test_values_ignored(self, tmp_path):
        path = tmp_path / "v.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 1\n"
            "1 2 3.14\n"
        )
        assert read_mtx(path).tolist() == [[0, 1]]

    def test_missing_banner(self, tmp_path):
        path = tmp_path / "b.mtx"
        path.write_text("1 1 0\n")
        with pytest.raises(WorkloadError):
            read_mtx(path)

    def test_missing_size_line(self, tmp_path):
        path = tmp_path / "b.mtx"
        path.write_text("%%MatrixMarket matrix coordinate pattern general\n% only comments\n")
        with pytest.raises(WorkloadError):
            read_mtx(path)

    def test_comments_inside_body(self, tmp_path):
        path = tmp_path / "c.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n"
            "% comment\n"
            "2 2 1\n"
            "% another\n"
            "1 2\n"
        )
        assert read_mtx(path).tolist() == [[0, 1]]

    def test_zero_based_coordinate_rejected(self, tmp_path):
        # MatrixMarket is 1-based; a 0 in the file lands at -1 here.
        path = tmp_path / "m.mtx"
        path.write_text("%%MatrixMarket matrix coordinate pattern general\n"
                        "4 4 2\n1 2\n0 3\n")
        with pytest.raises(WorkloadError, match="negative"):
            read_mtx(path)

    def test_entry_past_declared_size_rejected(self, tmp_path):
        path = tmp_path / "m.mtx"
        path.write_text("%%MatrixMarket matrix coordinate pattern general\n"
                        "4 4 2\n1 2\n5 3\n")
        with pytest.raises(WorkloadError, match="outside"):
            read_mtx(path)

    def test_non_integer_coordinate_rejected(self, tmp_path):
        path = tmp_path / "m.mtx"
        path.write_text("%%MatrixMarket matrix coordinate pattern general\n"
                        "4 4 1\nnan 2\n")
        with pytest.raises(WorkloadError, match="integers"):
            read_mtx(path)

    def test_feeds_graphtinker(self, tmp_path):
        """End-to-end: an .mtx file loads into the data structure."""
        from repro import GraphTinker, GTConfig

        path = tmp_path / "g.mtx"
        write_mtx(path, np.array([[0, 1], [1, 2], [2, 0]]))
        gt = GraphTinker(GTConfig(pagewidth=16, subblock=4, workblock=2))
        gt.insert_batch(read_mtx(path))
        assert gt.n_edges == 3
