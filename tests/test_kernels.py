"""Vector-kernel equivalence tests (``repro.core.kernels``).

The vector batch-ingest kernel is licensed to change *nothing* but
wall-clock time: for any input stream it must leave bit-identical store
state and bit-identical :class:`AccessStats` versus the scalar
reference.  Every test here drives the same operation stream through a
scalar store and a vector store and asserts total equality — contents,
counters, block layout, and a clean full fsck.

``tests/test_differential.py`` extends the same idea to randomized
streams against external oracles (STINGER, dict-of-dicts).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import GTConfig
from repro.core.graphtinker import GraphTinker
from repro.core.hashing import (
    initial_bucket,
    initial_bucket_array,
    subblock_index,
    subblock_index_array,
)
from repro.workloads import rmat_edges

SMALL = dict(pagewidth=16, subblock=8, workblock=4, max_generations=64)


def assert_equivalent(scalar: GraphTinker, vector: GraphTinker) -> None:
    """Total-state equality: counters, contents, layout, invariants."""
    sa, sb = scalar.stats.as_dict(), vector.stats.as_dict()
    assert sa == sb, {k: (sa[k], sb[k]) for k in sa if sa[k] != sb[k]}
    assert scalar.n_edges == vector.n_edges
    assert scalar.memory_blocks() == vector.memory_blocks()
    s1, d1, w1 = scalar.edge_arrays()
    s2, d2, w2 = vector.edge_arrays()
    assert (sorted(zip(s1.tolist(), d1.tolist(), w1.tolist()))
            == sorted(zip(s2.tolist(), d2.tolist(), w2.tolist())))
    report = vector.fsck(level="full")
    assert report.ok, report.summary()
    assert scalar.fsck(level="full").ok


def run_pair(cfg: GTConfig, ops) -> tuple[GraphTinker, GraphTinker]:
    """Apply ``ops`` (list of ("insert"|"delete", edges[, weights])) to a
    scalar-kernel store and a vector-kernel store; return both."""
    stores = []
    for kernel in ("scalar", "vector"):
        gt = GraphTinker(cfg.with_(kernel=kernel))
        for op in ops:
            if op[0] == "insert":
                _, edges, weights = op
                gt.insert_batch(edges, weights)
            else:
                gt.delete_batch(op[1])
        stores.append(gt)
    return stores[0], stores[1]


def churn_ops(seed: int, rounds: int = 4, nv: int = 150):
    """A duplicate-heavy insert/delete stream (deterministic per seed)."""
    rng = np.random.default_rng(seed)
    ops = []
    for _ in range(rounds):
        n = int(rng.integers(80, 400))
        batch = np.column_stack(
            [rng.integers(0, nv, n), rng.integers(0, nv // 3, n)]
        ).astype(np.int64)
        ops.append(("insert", batch, rng.random(n)))
        nd = int(rng.integers(40, 200))
        ops.append(("delete", np.column_stack(
            [rng.integers(0, nv, nd), rng.integers(0, nv // 3, nd)]
        ).astype(np.int64)))
    return ops


class TestStreamEquivalence:
    @pytest.mark.parametrize("nbatches", [1, 4])
    def test_rmat_insert(self, nbatches):
        edges = rmat_edges(12, 8_000, seed=11)
        weights = np.random.default_rng(5).random(edges.shape[0])
        step = edges.shape[0] // nbatches
        ops = [("insert", edges[i:i + step], weights[i:i + step])
               for i in range(0, edges.shape[0], step)]
        assert_equivalent(*run_pair(GTConfig(), ops))

    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_churn(self, seed):
        assert_equivalent(*run_pair(GTConfig(**SMALL), churn_ops(seed)))

    @pytest.mark.parametrize("flag", ["enable_sgh", "enable_cal", "enable_rhh"])
    def test_churn_with_feature_off(self, flag):
        cfg = GTConfig(**{**SMALL, flag: False})
        assert_equivalent(*run_pair(cfg, churn_ops(3)))

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", [101, 202, 303])
    def test_long_churn(self, seed):
        """Tier-2 stress: a much longer churn stream over a wider id
        space, at the paper's default geometry (deep CAL groups, many
        generations).  Deselected by default; run with ``-m slow``."""
        assert_equivalent(
            *run_pair(GTConfig(), churn_ops(seed, rounds=25, nv=800))
        )

    def test_self_loop_heavy(self):
        rng = np.random.default_rng(9)
        v = rng.integers(0, 50, 300)
        ops = [
            ("insert", np.column_stack([v, v]).astype(np.int64), rng.random(300)),
            ("delete", np.column_stack([v[:100], v[:100]]).astype(np.int64)),
        ]
        assert_equivalent(*run_pair(GTConfig(**SMALL), ops))


class TestEdgeCases:
    def test_empty_batch(self):
        empty = np.empty((0, 2), dtype=np.int64)
        gt = GraphTinker(GTConfig(kernel="vector"))
        assert gt.insert_batch(empty) == 0
        assert gt.delete_batch(empty) == 0
        assert gt.stats.as_dict() == GraphTinker(GTConfig()).stats.as_dict()

    def test_all_duplicates_last_weight_wins(self):
        """One edge repeated through a batch: CAL weight must be the last."""
        edges = np.array([[3, 5]] * 40, dtype=np.int64)
        weights = np.linspace(0.0, 1.0, 40)
        scalar, vector = run_pair(GTConfig(), [("insert", edges, weights)])
        assert_equivalent(scalar, vector)
        assert vector.n_edges == 1
        assert vector.edge_weight(3, 5) == pytest.approx(weights[-1])

    def test_in_batch_duplicates_of_in_batch_inserts(self):
        """Pending-pointer stress: duplicates of edges *placed by this very
        batch* must update the pending CAL record, not append a new one."""
        rng = np.random.default_rng(21)
        base = np.column_stack(
            [rng.integers(0, 20, 120), rng.integers(0, 30, 120)]
        ).astype(np.int64)
        tripled = np.repeat(base, 3, axis=0)
        weights = rng.random(tripled.shape[0])
        scalar, vector = run_pair(GTConfig(**SMALL), [("insert", tripled, weights)])
        assert_equivalent(scalar, vector)
        expect = {}
        for (s, d), w in zip(tripled.tolist(), weights.tolist()):
            expect[(s, d)] = w
        for (s, d), w in expect.items():
            assert vector.edge_weight(s, d) == pytest.approx(w)

    def test_batch_spanning_workblock_full_rehash(self):
        """One source, far more distinct dsts than a page holds: the batch
        must branch out across generations (descents, congestion, rehash)
        identically under both kernels."""
        cfg = GTConfig(pagewidth=8, subblock=8, workblock=4, max_generations=512)
        n = 400
        edges = np.column_stack(
            [np.zeros(n, dtype=np.int64), np.arange(n, dtype=np.int64)]
        )
        weights = np.random.default_rng(2).random(n)
        scalar, vector = run_pair(cfg, [("insert", edges, weights)])
        assert_equivalent(scalar, vector)
        assert vector.stats.branch_descents > 0
        assert vector.n_edges == n

    def test_weights_round_trip(self):
        rng = np.random.default_rng(31)
        edges = np.column_stack(
            [rng.integers(0, 40, 500), rng.integers(0, 60, 500)]
        ).astype(np.int64)
        weights = rng.random(500)
        scalar, vector = run_pair(GTConfig(), [("insert", edges, weights)])
        assert_equivalent(scalar, vector)
        last = {}
        for (s, d), w in zip(edges.tolist(), weights.tolist()):
            last[(s, d)] = w
        for (s, d), w in last.items():
            assert vector.edge_weight(s, d) == pytest.approx(w)
            assert scalar.edge_weight(s, d) == pytest.approx(w)

    def test_delete_with_misses_and_double_deletes(self):
        rng = np.random.default_rng(13)
        edges = np.column_stack(
            [rng.integers(0, 40, 600), rng.integers(0, 50, 600)]
        ).astype(np.int64)
        doomed = np.vstack([edges[:150], edges[:150],          # double deletes
                            np.array([[999, 999], [0, 10_000]])])  # misses
        ops = [("insert", edges, rng.random(600)), ("delete", doomed)]
        scalar, vector = run_pair(GTConfig(**SMALL), ops)
        assert_equivalent(scalar, vector)
        a = GraphTinker(GTConfig(kernel="scalar"))
        b = GraphTinker(GTConfig(kernel="vector"))
        a.insert_batch(edges)
        b.insert_batch(edges)
        assert a.delete_batch(doomed) == b.delete_batch(doomed)

    def test_compact_on_delete_stays_equivalent(self):
        """Compacting deletes couple sources through shared CAL tails, so
        the vector path must delegate — and stay bit-identical."""
        cfg = GTConfig(**SMALL, compact_on_delete=True, cal_block_size=4)
        assert_equivalent(*run_pair(cfg, churn_ops(17)))

    def test_short_weights_truncate_batch(self):
        """The scalar loop zips edges with weights; vector must mirror the
        silent truncation."""
        edges = np.column_stack(
            [np.arange(20, dtype=np.int64), np.arange(20, dtype=np.int64) + 100]
        )
        weights = np.ones(12)
        scalar, vector = run_pair(GTConfig(), [("insert", edges, weights)])
        assert_equivalent(scalar, vector)
        assert vector.n_edges == 12


class TestHashArrays:
    """The vectorized hash mirrors must agree with the scalar hashes the
    residue loop (and the scalar kernel) use — a disagreement would send
    fast-pass ops to the wrong Subblock/bucket."""

    @pytest.mark.parametrize("generation", [0, 1, 5, 63])
    def test_subblock_index_array(self, generation):
        dsts = np.random.default_rng(generation).integers(0, 1 << 40, 200)
        got = subblock_index_array(dsts, generation, 8, seed=0xBEEF)
        for d, g in zip(dsts.tolist(), got.tolist()):
            assert g == subblock_index(d, generation, 8, 0xBEEF)

    @pytest.mark.parametrize("generation", [0, 1, 5, 63])
    def test_initial_bucket_array(self, generation):
        dsts = np.random.default_rng(100 + generation).integers(0, 1 << 40, 200)
        got = initial_bucket_array(dsts, generation, 16, seed=0xBEEF)
        for d, g in zip(dsts.tolist(), got.tolist()):
            assert g == initial_bucket(d, generation, 16, 0xBEEF)
