"""Tests for derived benchmark metrics."""

import numpy as np
import pytest

from repro.bench.costmodel import CostModel
from repro.bench.metrics import (
    BatchMeasurement,
    load_stability,
    run_batched,
    speedup,
    throughput,
)
from repro.core.stats import AccessStats


class TestThroughput:
    def test_basic(self):
        assert throughput(100, 2.0) == 50.0

    def test_zero_time(self):
        assert throughput(100, 0.0) == float("inf")


class TestLoadStability:
    def test_paper_definition_fifth_batch_to_last(self):
        """Fig. 8 numbers: 1.6 -> 1.0 gives ~34% degradation (paper: 34%)."""
        series = [2.0, 1.9, 1.8, 1.7, 1.6, 1.4, 1.2, 1.0]
        assert load_stability(series) == pytest.approx((1.6 - 1.0) / 1.6)

    def test_stinger_like_series(self):
        series = [2.0, 1.8, 1.6, 1.5, 1.3, 1.0, 0.7, 0.4]
        assert load_stability(series) == pytest.approx((1.3 - 0.4) / 1.3)

    def test_short_series_clamps_reference(self):
        assert load_stability([2.0, 1.0]) == pytest.approx(0.5)

    def test_improving_series_clamped_to_zero(self):
        assert load_stability([1.0, 1.0, 1.0, 1.0, 1.0, 2.0]) == 0.0

    def test_empty(self):
        assert load_stability([]) == 0.0

    def test_single_element_series(self):
        """Regression: a 1-element series has no reference-to-last gap;
        it must not index past the reference clamp (len - 2 == -1)."""
        assert load_stability([2.0]) == 0.0
        assert load_stability([2.0], reference_index=0) == 0.0
        assert load_stability([0.0]) == 0.0

    def test_numpy_array_input(self):
        """Regression: ndarray input used to hit the ambiguous-truth-value
        TypeError in the empty-series guard."""
        series = np.array([2.0, 1.9, 1.8, 1.7, 1.6, 1.4, 1.2, 1.0])
        assert load_stability(series) == pytest.approx((1.6 - 1.0) / 1.6)
        assert load_stability(np.array([2.0])) == 0.0
        assert load_stability(np.array([])) == 0.0

    def test_generator_input(self):
        assert load_stability(x for x in [2.0, 1.0]) == pytest.approx(0.5)

    def test_negative_reference_index_clamped(self):
        assert load_stability([2.0, 1.0], reference_index=-5) == pytest.approx(0.5)


class TestRunBatched:
    def test_measures_each_batch(self):
        stats = AccessStats()

        def apply(batch):
            stats.random_block_reads += len(batch)

        batches = [np.zeros((5, 2)), np.zeros((3, 2))]
        out = run_batched(batches, apply, stats)
        assert [m.n_edges for m in out] == [5, 3]
        assert [m.stats_delta.random_block_reads for m in out] == [5, 3]
        assert all(m.wall_seconds >= 0 for m in out)

    def test_modeled_throughput_uses_delta(self):
        m = BatchMeasurement(0, 10, 0.1, AccessStats())
        m.stats_delta.random_block_reads = 5
        assert m.modeled_throughput(CostModel(random_block=1.0)) == pytest.approx(2.0)

    def test_wall_throughput(self):
        m = BatchMeasurement(0, 10, 0.5, AccessStats())
        assert m.wall_throughput == pytest.approx(20.0)


class TestSpeedup:
    def test_max_and_mean(self):
        mx, mean = speedup([2.0, 4.0], [1.0, 1.0])
        assert mx == 4.0
        assert mean == 3.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            speedup([1.0], [1.0, 2.0])

    def test_empty(self):
        with pytest.raises(ValueError):
            speedup([], [])
