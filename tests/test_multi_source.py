"""Multi-source analytics tests (multiple roots through one engine run)."""

import networkx as nx
import numpy as np
import pytest

from repro import GraphTinker, GTConfig
from repro.engine import BFS, SSSP, HybridEngine
from repro.workloads import rmat_edges


@pytest.fixture(scope="module")
def graph():
    edges = rmat_edges(9, 2000, seed=31)
    edges = edges[edges[:, 0] != edges[:, 1]]
    weights = np.random.default_rng(4).uniform(0.2, 2.0, edges.shape[0])
    return edges, weights


def multi_source_reference(G, roots, weighted):
    """Per-vertex min over per-root shortest paths."""
    best = {}
    for r in roots:
        if r not in G:
            continue
        if weighted:
            lengths = nx.single_source_dijkstra_path_length(G, r)
        else:
            lengths = nx.single_source_shortest_path_length(G, r)
        for v, d in lengths.items():
            if d < best.get(v, float("inf")):
                best[v] = d
    return best


@pytest.mark.parametrize("policy", ["full", "incremental", "hybrid"])
class TestMultiSourceBFS:
    def test_levels_are_min_over_roots(self, graph, policy):
        edges, _ = graph
        roots = np.unique(edges[:7, 0]).tolist()
        store = GraphTinker(GTConfig(pagewidth=16, subblock=4, workblock=2))
        store.insert_batch(edges)
        engine = HybridEngine(store, BFS(), policy=policy)
        engine.reset(roots=roots)
        engine.compute()
        G = nx.DiGraph()
        G.add_edges_from(edges.tolist())
        expected = multi_source_reference(G, roots, weighted=False)
        for v, d in expected.items():
            assert engine.value_of(v) == d, v


class TestMultiSourceSSSP:
    def test_distances_are_min_over_roots(self, graph):
        edges, weights = graph
        roots = np.unique(edges[:5, 0]).tolist()
        store = GraphTinker(GTConfig(pagewidth=16, subblock=4, workblock=2))
        store.insert_batch(edges, weights)
        engine = HybridEngine(store, SSSP(), policy="hybrid")
        engine.reset(roots=roots)
        engine.compute()
        G = nx.DiGraph()
        for (s, d), w in zip(edges.tolist(), weights.tolist()):
            G.add_edge(s, d, weight=w)
        expected = multi_source_reference(G, roots, weighted=True)
        for v, d in expected.items():
            assert engine.value_of(v) == pytest.approx(d), v

    def test_empty_roots_is_noop(self, graph):
        edges, _ = graph
        store = GraphTinker(GTConfig(pagewidth=16, subblock=4, workblock=2))
        store.insert_batch(edges)
        engine = HybridEngine(store, BFS(), policy="hybrid")
        engine.reset(roots=[])
        result = engine.compute()
        assert result.n_iterations == 0
        assert not np.isfinite(engine.values).any()
