"""Property and adversarial tests for the wire frame codec.

The frame layer is the one part of the network stack both ends must
agree on byte-for-byte, so it gets the heaviest scrutiny: round-trips
(including >64 KiB payloads, empty objects, and non-ASCII text),
arbitrary stream re-chunking through :class:`FrameDecoder`, and the full
catalogue of structural violations — each of which must raise a typed
:class:`~repro.errors.ProtocolError`, never a bare ``struct.error`` /
``JSONDecodeError`` and never a silent mis-parse.
"""

import json
import socket
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.net.frames import (
    DEFAULT_MAX_FRAME,
    HEADER_SIZE,
    MAGIC,
    FrameDecoder,
    MSGPACK_AVAILABLE,
    encode_frame,
    parse_header,
    read_frame,
    supported_codecs,
)


def decode_one(blob: bytes):
    decoder = FrameDecoder()
    decoder.feed(blob)
    frames = list(decoder.frames())
    assert len(frames) == 1
    assert decoder.at_boundary
    return frames[0]


class TestRoundTrip:
    def test_simple_object(self):
        msg = {"id": 1, "op": "degree", "args": {"src": 42}}
        assert decode_one(encode_frame(msg)) == msg

    def test_empty_object(self):
        assert decode_one(encode_frame({})) == {}

    def test_empty_list_and_scalars(self):
        for msg in ([], 0, -1, 1.5, "", True, None):
            assert decode_one(encode_frame(msg)) == msg

    def test_unicode_payload(self):
        msg = {"text": "héllo wörld ☃ \U0001F600 — グラフ"}
        blob = encode_frame(msg)
        assert decode_one(blob) == msg

    def test_large_payload_over_64kib(self):
        msg = {"edges": [[i, i + 1] for i in range(20_000)]}
        blob = encode_frame(msg)
        assert len(blob) > 64 * 1024
        assert decode_one(blob) == msg

    def test_payload_length_matches_header(self):
        msg = {"k": "v" * 100}
        blob = encode_frame(msg)
        _, length = parse_header(blob[:HEADER_SIZE])
        assert length == len(blob) - HEADER_SIZE

    def test_json_codec_is_always_supported(self):
        assert supported_codecs()[0] == "json"

    def test_msgpack_gated_on_import(self):
        if MSGPACK_AVAILABLE:
            assert "msgpack" in supported_codecs()
            msg = {"id": 7, "data": [1, 2, 3]}
            assert decode_one(encode_frame(msg, "msgpack")) == msg
        else:
            assert "msgpack" not in supported_codecs()
            with pytest.raises(ProtocolError):
                encode_frame({"id": 7}, "msgpack")


class TestStructuralViolations:
    def test_unknown_codec_name(self):
        with pytest.raises(ProtocolError, match="unknown codec"):
            encode_frame({}, "xml")

    def test_bad_magic(self):
        blob = bytearray(encode_frame({"id": 1}))
        blob[0:2] = b"XX"
        decoder = FrameDecoder()
        decoder.feed(bytes(blob))
        with pytest.raises(ProtocolError, match="magic"):
            list(decoder.frames())

    def test_unknown_codec_id(self):
        blob = bytearray(encode_frame({"id": 1}))
        blob[2] = 99
        decoder = FrameDecoder()
        decoder.feed(bytes(blob))
        with pytest.raises(ProtocolError, match="codec"):
            list(decoder.frames())

    def test_nonzero_reserved_flags(self):
        blob = bytearray(encode_frame({"id": 1}))
        blob[3] = 1
        decoder = FrameDecoder()
        decoder.feed(bytes(blob))
        with pytest.raises(ProtocolError, match="flags"):
            list(decoder.frames())

    def test_oversize_declared_length(self):
        header = struct.pack(">2sBBI", MAGIC, 0, 0, DEFAULT_MAX_FRAME + 1)
        with pytest.raises(ProtocolError, match="exceeds"):
            parse_header(header)

    def test_encode_respects_max_frame(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame({"blob": "x" * 1024}, max_frame=64)

    def test_truncated_header(self):
        with pytest.raises(ProtocolError, match="truncated"):
            parse_header(b"RG\x00")

    def test_undecodable_json_payload(self):
        payload = b"{not json"
        blob = struct.pack(">2sBBI", MAGIC, 0, 0, len(payload)) + payload
        decoder = FrameDecoder()
        decoder.feed(blob)
        with pytest.raises(ProtocolError, match="undecodable"):
            list(decoder.frames())

    def test_garbage_stream(self):
        decoder = FrameDecoder()
        decoder.feed(b"\xde\xad\xbe\xef" * 4)
        with pytest.raises(ProtocolError):
            list(decoder.frames())


class TestFrameDecoderStreaming:
    def test_incomplete_frame_is_not_an_error(self):
        blob = encode_frame({"id": 1, "op": "ping"})
        decoder = FrameDecoder()
        decoder.feed(blob[: len(blob) - 3])
        assert list(decoder.frames()) == []
        assert not decoder.at_boundary
        decoder.feed(blob[len(blob) - 3:])
        assert list(decoder.frames()) == [{"id": 1, "op": "ping"}]
        assert decoder.at_boundary

    def test_multiple_frames_in_one_feed(self):
        msgs = [{"id": i} for i in range(5)]
        decoder = FrameDecoder()
        decoder.feed(b"".join(encode_frame(m) for m in msgs))
        assert list(decoder.frames()) == msgs

    def test_byte_at_a_time(self):
        msg = {"id": 3, "args": {"src": 1, "text": "グ"}}
        blob = encode_frame(msg)
        decoder = FrameDecoder()
        got = []
        for i in range(len(blob)):
            decoder.feed(blob[i:i + 1])
            got.extend(decoder.frames())
        assert got == [msg]


# JSON-safe message objects: nested dicts/lists of scalars and strings.
json_scalars = st.one_of(
    st.none(), st.booleans(),
    st.integers(min_value=-(2 ** 53), max_value=2 ** 53),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=40))
json_values = st.recursive(
    json_scalars,
    lambda inner: st.one_of(
        st.lists(inner, max_size=6),
        st.dictionaries(st.text(max_size=10), inner, max_size=6)),
    max_leaves=25)


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(messages=st.lists(json_values, min_size=1, max_size=6),
           data=st.data())
    def test_any_chunking_recovers_the_message_sequence(self, messages,
                                                        data):
        """Frames survive arbitrary stream re-chunking, in order."""
        stream = b"".join(encode_frame(m) for m in messages)
        decoder = FrameDecoder()
        got = []
        i = 0
        while i < len(stream):
            step = data.draw(st.integers(min_value=1, max_value=len(stream)),
                             label="chunk")
            decoder.feed(stream[i:i + step])
            got.extend(decoder.frames())
            i += step
        assert got == messages
        assert decoder.at_boundary

    @settings(max_examples=60, deadline=None)
    @given(msg=json_values)
    def test_round_trip_identity(self, msg):
        blob = encode_frame(msg)
        assert decode_one(blob) == json.loads(
            blob[HEADER_SIZE:].decode("utf-8"))
        assert decode_one(blob) == msg


class TestBlockingReadFrame:
    def _pair(self):
        a, b = socket.socketpair()
        a.settimeout(5.0)
        b.settimeout(5.0)
        return a, b

    def test_reads_one_frame(self):
        a, b = self._pair()
        try:
            msg = {"id": 9, "op": "ping"}
            a.sendall(encode_frame(msg))
            assert read_frame(b) == msg
        finally:
            a.close()
            b.close()

    def test_clean_eof_returns_none(self):
        a, b = self._pair()
        try:
            a.close()
            assert read_frame(b) is None
        finally:
            b.close()

    def test_eof_mid_frame_raises(self):
        a, b = self._pair()
        try:
            blob = encode_frame({"id": 1, "payload": "x" * 100})
            a.sendall(blob[: len(blob) - 10])
            a.close()
            with pytest.raises(ProtocolError, match="mid-frame"):
                read_frame(b)
        finally:
            b.close()
