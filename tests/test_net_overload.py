"""Overload semantics across the wire: typed SHED / BREAKER_OPEN /
QUEUE_FULL frames, retry-with-backoff recovery, and the net.shed counter.

The service's overload machinery (read shedding, circuit breaker,
bounded queue) already has in-process tests; these verify the *wire*
contract — that each condition surfaces to a remote client as the same
typed exception carrying a retryable code, that the server connection
survives the error, and that a client's transparent retry policy rides
out the transient.
"""

import time

import pytest

import repro.obs as obs
from repro.errors import (
    BreakerOpenError,
    QueueFullError,
    ShedError,
)
from repro.net.client import GraphClient
from repro.net.protocol import RETRYABLE_CODES
from repro.net.server import ServerThread
from repro.obs.metrics import MetricsRegistry
from repro.service import GraphService, TransientFaultInjector


@pytest.fixture
def registry():
    r = MetricsRegistry()
    prior = obs.set_registry(r)
    obs.enable()
    yield r
    obs.disable()
    obs.set_registry(prior)


def serve(service, **kwargs):
    return ServerThread(service, view_refresh_s=0.0, **kwargs)


class TestShedOverWire:
    def _congested(self, tmp_path):
        # flush_interval is the flusher's deadline: nothing drains for
        # 30s, so one queued batch keeps the depth over the shed mark
        # deterministically for the whole test.
        return GraphService(tmp_path, flush_interval=30.0, shed_reads_at=1)

    def test_shed_read_is_typed_and_survivable(self, tmp_path, registry):
        with self._congested(tmp_path) as svc:
            with serve(svc) as thread:
                with GraphClient(port=thread.port) as c:
                    c.insert_edges([[1, 2]], wait=False)
                    with pytest.raises(ShedError) as info:
                        c.degree(1)
                    assert info.value.code == "SHED"
                    assert info.value.code in RETRYABLE_CODES
                    # connection survives; admin ops are never shed
                    assert c.ping() == {"pong": True}
                    assert c.health()["shedding_reads"] is True
            svc.flush_now()

    def test_net_shed_counter_increments(self, tmp_path, registry):
        with self._congested(tmp_path) as svc:
            with serve(svc) as thread:
                with GraphClient(port=thread.port) as c:
                    c.insert_edges([[1, 2]], wait=False)
                    for _ in range(3):
                        with pytest.raises(ShedError):
                            c.degree(1)
            assert registry.counter("net.shed").value == 3
            assert registry.counter("net.errors").value >= 3
            svc.flush_now()

    def test_retry_rides_out_the_congestion(self, tmp_path):
        # Short deadline this time: the queued batch drains after ~0.3s,
        # so the first read sheds and a later backoff attempt lands.
        with GraphService(tmp_path, flush_interval=0.3,
                          shed_reads_at=1) as svc:
            with serve(svc) as thread:
                with GraphClient(port=thread.port, retries=10,
                                 backoff=0.1, backoff_cap=0.2) as c:
                    c.insert_edges([[1, 2]], wait=False)
                    assert c.degree(1) in (0, 1)  # view staleness is fine
                    assert c.n_retries >= 1


class TestQueueFullOverWire:
    def test_queue_full_is_typed(self, tmp_path):
        with GraphService(tmp_path, flush_interval=30.0, queue_limit=1,
                          submit_timeout=0.05) as svc:
            with serve(svc) as thread:
                with GraphClient(port=thread.port) as c:
                    c.insert_edges([[1, 2]], wait=False)  # fills the queue
                    with pytest.raises(QueueFullError) as info:
                        c.insert_edges([[3, 4]], wait=False)
                    assert info.value.code == "QUEUE_FULL"
                    assert info.value.code in RETRYABLE_CODES
                    assert c.ping() == {"pong": True}
            svc.flush_now()

    def test_retry_succeeds_once_the_queue_drains(self, tmp_path):
        with GraphService(tmp_path, flush_interval=0.3, queue_limit=1,
                          submit_timeout=0.05) as svc:
            with serve(svc) as thread:
                with GraphClient(port=thread.port, retries=10,
                                 backoff=0.1, backoff_cap=0.3) as c:
                    c.insert_edges([[1, 2]], wait=False)
                    got = c.insert_edges([[3, 4]], wait=False)
                    assert got == {"queued": True, "n_edges": 1}
                    assert c.n_retries >= 1
            svc.flush_now()
            assert svc.n_edges == 2


class TestBreakerOverWire:
    def test_breaker_open_is_typed_then_recovers_after_reset(self,
                                                             tmp_path):
        # Two consecutive flush failures trip the breaker; the injected
        # fault clears afterwards, so the post-reset half-open probe
        # succeeds and the retrying client gets its write through.
        injector = TransientFaultInjector(fail_every=1, fail_times=2)
        svc = GraphService(tmp_path, batch_edges=64, flush_interval=0.01,
                           breaker_threshold=2, breaker_reset=0.3,
                           injector=injector)
        try:
            with serve(svc) as thread:
                with GraphClient(port=thread.port) as c:
                    # Each waited write rides one failing flush.
                    for _ in range(2):
                        with pytest.raises(Exception):
                            c.insert_edges([[1, 2]])
                    assert svc.health()["breaker"]["state"] == "open"
                    with pytest.raises(BreakerOpenError) as info:
                        c.insert_edges([[3, 4]])
                    assert info.value.code == "BREAKER_OPEN"
                    assert info.value.code in RETRYABLE_CODES
                    # With retries the client outlasts the reset window:
                    # the half-open probe flush succeeds and re-closes it.
                    retrier = GraphClient(port=thread.port, retries=10,
                                          backoff=0.15, backoff_cap=0.4)
                    with retrier:
                        got = retrier.insert_edges([[5, 6]])
                        assert got["n_edges"] == 1
                        assert retrier.n_retries >= 1
                    deadline = time.monotonic() + 5.0
                    while (svc.health()["breaker"]["state"] != "closed"
                           and time.monotonic() < deadline):
                        time.sleep(0.02)
                    assert svc.health()["breaker"]["state"] == "closed"
        finally:
            svc.close()
