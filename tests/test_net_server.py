"""End-to-end tests for the network front-end: server, clients, read path.

Everything here runs a real :class:`ServerThread` over a real
:class:`GraphService` on a loopback TCP port — no mocked transports —
because the properties under test (ordered pipelining, generation
monotonicity, disconnect containment, wire-vs-in-process state identity)
only mean anything across an actual socket boundary.
"""

import asyncio
import socket
import threading
import time

import numpy as np
import pytest

from repro.core.graphtinker import GraphTinker
from repro.errors import NetError, ProtocolError, WorkloadError
from repro.net.aioclient import AsyncGraphClient
from repro.net.client import GraphClient
from repro.net.frames import encode_frame, read_frame
from repro.net.protocol import PROTOCOL_VERSION, store_digest
from repro.net.server import ServerThread
from repro.service import GraphService, recover
from repro.workloads import rmat_edges


@pytest.fixture
def service(tmp_path):
    svc = GraphService(tmp_path, batch_edges=512, flush_interval=0.005)
    yield svc
    svc.close()


@pytest.fixture
def server(service):
    # view_refresh_s=0: re-capture on every applied-seq change so reads
    # observe writes promptly (tests force exactness via refresh()).
    with ServerThread(service, view_refresh_s=0.0) as thread:
        yield thread


@pytest.fixture
def client(server):
    with GraphClient(port=server.port) as c:
        yield c


class TestOpRoundTrips:
    def test_ping(self, client):
        assert client.ping() == {"pong": True}

    def test_hello_negotiates_version_and_codec(self, server):
        with GraphClient(port=server.port) as c:
            assert c.codec in ("json", "msgpack")

    def test_point_reads_after_insert(self, client):
        client.insert_edges([[1, 2], [1, 3], [2, 3]])
        client.refresh()
        assert client.degree(1) == 2
        got = client.neighbors(1)
        assert sorted(got["dst"]) == [2, 3]
        assert client.degree(999) == 0

    def test_weights_on_the_wire(self, client):
        client.insert_edges([[5, 6]], weights=[2.5])
        client.refresh()
        got = client.neighbors(5)
        assert got["dst"] == [6]
        assert got["weight"] == [2.5]

    def test_khop(self, client):
        client.insert_edges([[1, 2], [2, 3], [3, 4]])
        client.refresh()
        got = client.khop(1, 2)
        assert set(got["vertices"]) >= {1, 2, 3}
        assert 4 not in got["vertices"]
        assert got["truncated"] is False

    def test_khop_limit_truncates(self, client):
        star = [[0, i] for i in range(1, 50)]
        client.insert_edges(star)
        client.refresh()
        got = client.khop(0, 1, limit=10)
        assert got["truncated"] is True
        assert len(got["vertices"]) <= 11  # limit + the source

    def test_shortest_path(self, client):
        client.insert_edges([[1, 2], [2, 3], [1, 3]],
                            weights=[1.0, 1.0, 5.0])
        client.refresh()
        got = client.shortest_path(1, 3)
        assert got["found"] is True
        assert got["path"] == [1, 2, 3]
        assert got["distance"] == pytest.approx(2.0)
        unweighted = client.shortest_path(1, 3, weighted=False)
        assert unweighted["path"] == [1, 3]

    def test_delete_edges(self, client):
        client.insert_edges([[1, 2], [1, 3]])
        client.delete_edges([[1, 2]])
        client.refresh()
        assert client.degree(1) == 1
        assert client.neighbors(1)["dst"] == [3]

    def test_health_includes_net_and_view(self, client):
        health = client.health()
        assert health["ok"] is True
        assert health["net"]["active_conns"] >= 1
        assert health["net"]["view_generation"] >= 0
        assert health["snapshot_generation"] is not None

    def test_metrics_frame(self, client):
        got = client.metrics()
        assert "prometheus" in got
        assert isinstance(got["obs_enabled"], bool)

    def test_digest_reports_edge_count(self, client):
        client.insert_edges([[1, 2], [3, 4]])
        digest = client.digest()
        assert digest["n_edges"] == 2
        assert len(digest["sha256"]) == 64

    def test_unknown_op_is_bad_request(self, client):
        with pytest.raises(WorkloadError) as info:
            client.call("frobnicate")
        assert info.value.code == "BAD_REQUEST"

    def test_malformed_edges_are_bad_request(self, client):
        with pytest.raises(WorkloadError):
            client.insert_edges([[1, 2, 3]])
        with pytest.raises(WorkloadError):
            client.call("degree", {"src": "not-an-int"})
        # the connection survives a bad request
        assert client.ping() == {"pong": True}


class TestDifferentialDigest:
    def test_wire_equals_in_process_after_rmat_churn(self, client):
        """The equality oracle: RMAT ingest + deletes through the wire
        must leave exactly the state the same ops produce in-process."""
        edges = rmat_edges(9, 3000, seed=11)
        ref = GraphTinker()
        step = 500
        for i in range(0, edges.shape[0], step):
            batch = edges[i:i + step]
            client.insert_edges(batch.tolist())
            ref.insert_batch(batch)
            if i % (2 * step) == 0 and i > 0:
                victims = edges[i - step:i - step + 100]
                client.delete_edges(victims.tolist())
                ref.delete_batch(victims)
        wire = client.digest()
        local = store_digest(ref)
        assert wire["sha256"] == local["sha256"]
        assert wire["n_edges"] == local["n_edges"]


class TestGenerationMonotonicity:
    def test_generation_never_decreases_under_concurrent_writes(
            self, server):
        stop = threading.Event()
        fatal = []

        def writer():
            try:
                with GraphClient(port=server.port) as wc:
                    rng = np.random.default_rng(3)
                    while not stop.is_set():
                        batch = rng.integers(0, 512, size=(32, 2))
                        wc.insert_edges(batch.tolist())
            except Exception as exc:  # noqa: BLE001 - surfaced below
                fatal.append(exc)

        thread = threading.Thread(target=writer, daemon=True)
        thread.start()
        try:
            with GraphClient(port=server.port) as rc:
                last = -1
                deadline = time.monotonic() + 2.0
                while time.monotonic() < deadline:
                    rc.degree(int(time.monotonic() * 1000) % 512)
                    gen = rc.last_generation
                    assert gen is not None and gen >= last
                    last = gen
                # the view must actually advance while writes land
                rc.refresh()
                rc.degree(0)
                assert rc.last_generation >= last
        finally:
            stop.set()
            thread.join(5.0)
        assert not fatal, f"writer died: {fatal[0]!r}"

    def test_refresh_gives_read_your_writes(self, client):
        client.insert_edges([[7, 8]])
        before = client.refresh()
        assert client.degree(7) == 1
        assert client.last_generation >= before["generation"] - 1


class TestPipelining:
    def test_pipelined_submit_ordered_and_durable(self, client, service):
        batches = [[[i, i + 1], [i, i + 2]] for i in range(0, 40, 4)]
        results = client.submit_edges_pipelined(batches, window=4)
        assert len(results) == len(batches)
        seqs = [r["seq"] for r in results]
        assert seqs == sorted(seqs)
        assert all(r["n_edges"] == 2 for r in results)
        ref = GraphTinker()
        for batch in batches:
            ref.insert_batch(np.asarray(batch))
        assert client.digest()["sha256"] == store_digest(ref)["sha256"]

    def test_async_wait_false_returns_queued(self, client):
        got = client.insert_edges([[100, 101]], wait=False)
        assert got == {"queued": True, "n_edges": 1}


class TestAsyncClient:
    def test_async_client_mirror(self, server):
        async def scenario():
            async with AsyncGraphClient(port=server.port) as c:
                assert await c.ping() == {"pong": True}
                await c.insert_edges([[1, 2], [1, 3]])
                await c.refresh()
                assert await c.degree(1) == 2
                got = await c.neighbors(1)
                assert sorted(got["dst"]) == [2, 3]
                health = await c.health()
                assert health["ok"] is True
                return await c.digest()

        digest = asyncio.run(scenario())
        assert digest["n_edges"] == 2

    def test_async_many_connections_one_loop(self, server):
        async def scenario():
            clients = [AsyncGraphClient(port=server.port) for _ in range(4)]
            try:
                await asyncio.gather(*(c.connect() for c in clients))
                await asyncio.gather(*(
                    c.insert_edges([[i, i + 1]])
                    for i, c in enumerate(clients)))
                return [await c.ping() for c in clients]
            finally:
                await asyncio.gather(*(c.close() for c in clients))

        assert asyncio.run(scenario()) == [{"pong": True}] * 4


class TestProtocolEnforcement:
    def test_version_mismatch_rejected_with_typed_frame(self, server):
        with socket.create_connection(("127.0.0.1", server.port),
                                      timeout=5.0) as sock:
            sock.sendall(encode_frame(
                {"id": 1, "op": "hello", "args": {"proto": 999}}))
            response = read_frame(sock)
            assert response["ok"] is False
            assert response["error"]["code"] == "VERSION"
            # the server hangs up after a version mismatch
            assert read_frame(sock) is None

    def test_hello_first_enforced(self, server):
        with socket.create_connection(("127.0.0.1", server.port),
                                      timeout=5.0) as sock:
            sock.sendall(encode_frame(
                {"id": 1, "op": "degree", "args": {"src": 1}}))
            response = read_frame(sock)
            assert response["ok"] is False
            assert response["error"]["code"] == "PROTOCOL"

    def test_client_raises_on_version_mismatch(self, server, monkeypatch):
        import repro.net.client as client_mod
        monkeypatch.setattr(client_mod, "PROTOCOL_VERSION",
                            PROTOCOL_VERSION + 1)
        with pytest.raises(ProtocolError):
            GraphClient(port=server.port).connect()

    def test_garbage_bytes_answered_typed_then_closed(self, server):
        with socket.create_connection(("127.0.0.1", server.port),
                                      timeout=5.0) as sock:
            sock.sendall(b"\xde\xad\xbe\xef" + b"\x00" * 16)
            response = read_frame(sock)
            assert response["ok"] is False
            assert response["error"]["code"] == "PROTOCOL"
            assert read_frame(sock) is None


class TestDisconnectContainment:
    def _wait_active(self, server, expected, timeout=5.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if server.server.active_connections == expected:
                return
            time.sleep(0.01)
        raise AssertionError(
            f"active_connections stuck at "
            f"{server.server.active_connections}, expected {expected}")

    def test_abrupt_disconnect_mid_frame_leaves_server_serving(
            self, server):
        baseline = server.server.active_connections
        blob = encode_frame({"id": 1, "op": "hello",
                             "args": {"proto": PROTOCOL_VERSION,
                                      "codecs": ["json"]}})
        sock = socket.create_connection(("127.0.0.1", server.port),
                                        timeout=5.0)
        sock.sendall(blob[: len(blob) - 4])  # die mid-frame
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                        b"\x01\x00\x00\x00\x00\x00\x00\x00")  # RST
        sock.close()
        self._wait_active(server, baseline)
        with GraphClient(port=server.port) as c:
            assert c.ping() == {"pong": True}

    def test_many_churning_connections(self, server):
        baseline = server.server.active_connections
        for _ in range(10):
            with GraphClient(port=server.port) as c:
                c.ping()
        self._wait_active(server, baseline)
        assert server.server.n_connections >= 10

    def test_client_reports_server_gone_as_net_error(self, service):
        thread = ServerThread(service).start()
        c = GraphClient(port=thread.port).connect()
        thread.stop()
        with pytest.raises((NetError, ProtocolError)):
            for _ in range(5):  # first call may still find the socket up
                c.ping()
                time.sleep(0.05)
        c.close()


class TestCloseOrdering:
    def test_acked_writes_survive_service_close(self, tmp_path):
        """Regression for the close-ordering contract: every write the
        server acknowledged (ticket resolved durable) must be recoverable
        after server stop + service close, whatever the fsync policy."""
        edges = rmat_edges(8, 600, seed=5)
        svc = GraphService(tmp_path, batch_edges=128, flush_interval=0.005,
                           sync="batch")
        thread = ServerThread(svc, view_refresh_s=0.0).start()
        try:
            with GraphClient(port=thread.port) as c:
                for i in range(0, edges.shape[0], 100):
                    c.insert_edges(edges[i:i + 100].tolist())
                acked = c.digest()
        finally:
            thread.stop()
            svc.close()
        result = recover(tmp_path)
        assert store_digest(result.store)["sha256"] == acked["sha256"]

    def test_server_stop_does_not_close_the_service(self, tmp_path):
        svc = GraphService(tmp_path, flush_interval=0.005)
        thread = ServerThread(svc).start()
        thread.stop()
        # ownership rule: the service is still usable after server stop
        svc.submit_insert(np.array([[1, 2]])).wait(5.0)
        assert svc.n_edges == 1
        svc.close()
