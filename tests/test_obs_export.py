"""Round-trip tests for the JSONL / Prometheus / Table exporters."""

import json

import pytest

import repro.obs as obs
from repro.core.stats import AccessStats
from repro.obs.export import (
    parse_prometheus,
    registry_from_jsonl,
    registry_to_jsonl,
    registry_to_prometheus,
    registry_to_table,
    render_span_tree,
    trace_from_jsonl,
    trace_to_jsonl,
    trace_to_table,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer


@pytest.fixture
def trace_roots():
    """A two-level recorded trace with stats deltas on the leaves."""
    t = Tracer()
    prior_t = obs.set_tracer(t)
    obs.enable()
    try:
        stats = AccessStats()
        with obs.span("run", dataset="demo"):
            with obs.span("insert_batch", stats=stats, batch=0):
                stats.workblock_fetches += 4
                stats.edges_inserted += 2
            with obs.span("insert_batch", stats=stats, batch=1):
                stats.workblock_fetches += 6
    finally:
        obs.disable()
        obs.set_tracer(prior_t)
    return t.roots


@pytest.fixture
def registry():
    r = MetricsRegistry()
    with obs.enabled_scope():
        r.counter("gt.rhh.swaps", "Robin Hood displacement swaps").inc(7)
        r.gauge("engine.predictor").set(0.015)
        h = r.histogram("gt.probe.distance", "FIND probe cost",
                        buckets=(1, 2, 4))
        for v in (1, 1, 3, 9):
            h.record(v)
    return r


class TestTraceJsonl:
    def test_every_line_is_json(self, trace_roots):
        text = trace_to_jsonl(trace_roots)
        lines = text.strip().splitlines()
        assert len(lines) == 3
        for line in lines:
            json.loads(line)

    def test_round_trip_preserves_tree(self, trace_roots):
        back = trace_from_jsonl(trace_to_jsonl(trace_roots))
        assert len(back) == 1
        root = back[0]
        assert root.name == "run"
        assert root.attrs == {"dataset": "demo"}
        assert [c.name for c in root.children] == ["insert_batch", "insert_batch"]
        assert [c.attrs["batch"] for c in root.children] == [0, 1]

    def test_round_trip_preserves_stats_deltas(self, trace_roots):
        back = trace_from_jsonl(trace_to_jsonl(trace_roots))
        deltas = [c.stats_delta for c in back[0].children]
        assert deltas[0].workblock_fetches == 4
        assert deltas[0].edges_inserted == 2
        assert deltas[1].workblock_fetches == 6
        assert back[0].merged_delta().workblock_fetches == 10

    def test_round_trip_preserves_durations(self, trace_roots):
        back = trace_from_jsonl(trace_to_jsonl(trace_roots))
        originals = [s.duration for _, s in trace_roots[0].walk()]
        restored = [s.duration for _, s in back[0].walk()]
        assert restored == originals

    def test_empty_forest(self):
        assert trace_to_jsonl([]) == ""
        assert trace_from_jsonl("") == []


class TestTraceHuman:
    def test_tree_rendering_indents_children(self, trace_roots):
        text = render_span_tree(trace_roots)
        lines = text.splitlines()
        assert lines[0].startswith("run")
        assert lines[1].startswith("  insert_batch")
        assert "block accesses" in lines[0]

    def test_table_has_one_row_per_span(self, trace_roots):
        table = trace_to_table(trace_roots)
        assert len(table.rows) == 3
        assert "span" in table.columns


class TestPrometheus:
    def test_text_format_shape(self, registry):
        text = registry_to_prometheus(registry)
        assert "# TYPE gt_rhh_swaps counter" in text
        assert "# HELP gt_rhh_swaps Robin Hood displacement swaps" in text
        assert "gt_rhh_swaps 7" in text
        assert '# TYPE gt_probe_distance histogram' in text
        assert 'gt_probe_distance_bucket{le="+Inf"} 4' in text
        assert "gt_probe_distance_count 4" in text

    def test_round_trip(self, registry):
        parsed = parse_prometheus(registry_to_prometheus(registry))
        assert parsed["gt_rhh_swaps"] == {"type": "counter", "value": 7.0}
        assert parsed["engine_predictor"] == {"type": "gauge", "value": 0.015}
        hist = parsed["gt_probe_distance"]
        assert hist["type"] == "histogram"
        assert hist["buckets"] == {"1": 2, "2": 2, "4": 3, "+Inf": 4}
        assert hist["sum"] == 14.0
        assert hist["count"] == 4.0

    def test_empty_registry(self):
        assert registry_to_prometheus(MetricsRegistry()) == ""
        assert parse_prometheus("") == {}


class TestRegistryJsonl:
    def test_round_trip(self, registry):
        back = registry_from_jsonl(registry_to_jsonl(registry))
        assert back.collect() == registry.collect()
        hist = back.get("gt.probe.distance")
        assert hist.buckets == (1.0, 2.0, 4.0)
        assert hist.bucket_counts == [2, 0, 1, 1]
        assert hist.max_value == 9

    def test_round_trip_survives_disabled_switch(self, registry):
        assert not obs.is_enabled()
        back = registry_from_jsonl(registry_to_jsonl(registry))
        assert back.get("gt.rhh.swaps").value == 7


class TestRegistryTable:
    def test_rows_and_histogram_detail(self, registry):
        table = registry_to_table(registry)
        rendered = table.render()
        assert "gt.rhh.swaps" in rendered
        assert "count=4" in rendered
