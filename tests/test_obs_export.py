"""Round-trip tests for the JSONL / Prometheus / Table exporters."""

import json

import pytest

import repro.obs as obs
from repro.core.stats import AccessStats
from repro.obs.export import (
    parse_prometheus,
    registry_from_jsonl,
    registry_to_jsonl,
    registry_to_prometheus,
    registry_to_table,
    render_span_tree,
    timeseries_from_jsonl,
    timeseries_to_jsonl,
    timeseries_to_prometheus,
    trace_from_jsonl,
    trace_to_jsonl,
    trace_to_table,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import TimeSeriesRing
from repro.obs.tracing import Tracer


@pytest.fixture
def trace_roots():
    """A two-level recorded trace with stats deltas on the leaves."""
    t = Tracer()
    prior_t = obs.set_tracer(t)
    obs.enable()
    try:
        stats = AccessStats()
        with obs.span("run", dataset="demo"):
            with obs.span("insert_batch", stats=stats, batch=0):
                stats.workblock_fetches += 4
                stats.edges_inserted += 2
            with obs.span("insert_batch", stats=stats, batch=1):
                stats.workblock_fetches += 6
    finally:
        obs.disable()
        obs.set_tracer(prior_t)
    return t.roots


@pytest.fixture
def registry():
    r = MetricsRegistry()
    with obs.enabled_scope():
        r.counter("gt.rhh.swaps", "Robin Hood displacement swaps").inc(7)
        r.gauge("engine.predictor").set(0.015)
        h = r.histogram("gt.probe.distance", "FIND probe cost",
                        buckets=(1, 2, 4))
        for v in (1, 1, 3, 9):
            h.record(v)
        q = r.quantile("service.flush.ms", "micro-batch flush latency")
        q.observe_many([1.0, 2.0, 3.0, 4.0, 100.0])
    return r


class TestTraceJsonl:
    def test_every_line_is_json(self, trace_roots):
        text = trace_to_jsonl(trace_roots)
        lines = text.strip().splitlines()
        assert len(lines) == 3
        for line in lines:
            json.loads(line)

    def test_round_trip_preserves_tree(self, trace_roots):
        back = trace_from_jsonl(trace_to_jsonl(trace_roots))
        assert len(back) == 1
        root = back[0]
        assert root.name == "run"
        assert root.attrs == {"dataset": "demo"}
        assert [c.name for c in root.children] == ["insert_batch", "insert_batch"]
        assert [c.attrs["batch"] for c in root.children] == [0, 1]

    def test_round_trip_preserves_stats_deltas(self, trace_roots):
        back = trace_from_jsonl(trace_to_jsonl(trace_roots))
        deltas = [c.stats_delta for c in back[0].children]
        assert deltas[0].workblock_fetches == 4
        assert deltas[0].edges_inserted == 2
        assert deltas[1].workblock_fetches == 6
        assert back[0].merged_delta().workblock_fetches == 10

    def test_round_trip_preserves_durations(self, trace_roots):
        back = trace_from_jsonl(trace_to_jsonl(trace_roots))
        originals = [s.duration for _, s in trace_roots[0].walk()]
        restored = [s.duration for _, s in back[0].walk()]
        assert restored == originals

    def test_empty_forest(self):
        assert trace_to_jsonl([]) == ""
        assert trace_from_jsonl("") == []


class TestTraceHuman:
    def test_tree_rendering_indents_children(self, trace_roots):
        text = render_span_tree(trace_roots)
        lines = text.splitlines()
        assert lines[0].startswith("run")
        assert lines[1].startswith("  insert_batch")
        assert "block accesses" in lines[0]

    def test_table_has_one_row_per_span(self, trace_roots):
        table = trace_to_table(trace_roots)
        assert len(table.rows) == 3
        assert "span" in table.columns


class TestPrometheus:
    def test_text_format_shape(self, registry):
        text = registry_to_prometheus(registry)
        assert "# TYPE gt_rhh_swaps counter" in text
        assert "# HELP gt_rhh_swaps Robin Hood displacement swaps" in text
        assert "gt_rhh_swaps 7" in text
        assert '# TYPE gt_probe_distance histogram' in text
        assert 'gt_probe_distance_bucket{le="+Inf"} 4' in text
        assert "gt_probe_distance_count 4" in text

    def test_round_trip(self, registry):
        parsed = parse_prometheus(registry_to_prometheus(registry))
        assert parsed["gt_rhh_swaps"] == {"type": "counter", "value": 7.0}
        assert parsed["engine_predictor"] == {"type": "gauge", "value": 0.015}
        hist = parsed["gt_probe_distance"]
        assert hist["type"] == "histogram"
        assert hist["buckets"] == {"1": 2, "2": 2, "4": 3, "+Inf": 4}
        assert hist["sum"] == 14.0
        assert hist["count"] == 4.0

    def test_empty_registry(self):
        assert registry_to_prometheus(MetricsRegistry()) == ""
        assert parse_prometheus("") == {}


class TestRegistryJsonl:
    def test_round_trip(self, registry):
        back = registry_from_jsonl(registry_to_jsonl(registry))
        assert back.collect() == registry.collect()
        hist = back.get("gt.probe.distance")
        assert hist.buckets == (1.0, 2.0, 4.0)
        assert hist.bucket_counts == [2, 0, 1, 1]
        assert hist.max_value == 9

    def test_round_trip_survives_disabled_switch(self, registry):
        assert not obs.is_enabled()
        back = registry_from_jsonl(registry_to_jsonl(registry))
        assert back.get("gt.rhh.swaps").value == 7


class TestRegistryTable:
    def test_rows_and_histogram_detail(self, registry):
        table = registry_to_table(registry)
        rendered = table.render()
        assert "gt.rhh.swaps" in rendered
        assert "count=4" in rendered

    def test_quantile_detail_row(self, registry):
        rendered = registry_to_table(registry).render()
        assert "service.flush.ms" in rendered
        assert "p50=3" in rendered
        assert "p99=" in rendered


class TestSummaryFamily:
    def test_quantiles_render_as_summary(self, registry):
        text = registry_to_prometheus(registry)
        assert "# TYPE service_flush_ms summary" in text
        assert 'service_flush_ms{quantile="0.5"} 3' in text
        assert "service_flush_ms_sum 110" in text
        assert "service_flush_ms_count 5" in text

    def test_summary_round_trip(self, registry):
        parsed = parse_prometheus(registry_to_prometheus(registry))
        summary = parsed["service_flush_ms"]
        assert summary["type"] == "summary"
        sketch = registry.quantile("service.flush.ms")
        assert summary["quantiles"] == {
            "0.5": sketch.quantile(0.5),
            "0.9": sketch.quantile(0.9),
            "0.99": sketch.quantile(0.99),
        }
        assert summary["sum"] == sketch.total
        assert summary["count"] == 5.0

    def test_registry_jsonl_restores_sketch_state(self, registry):
        back = registry_from_jsonl(registry_to_jsonl(registry))
        original = registry.quantile("service.flush.ms")
        restored = back.quantile("service.flush.ms")
        assert restored.summary() == original.summary()
        assert restored.quantile(0.73) == original.quantile(0.73)


class TestPrometheusHardening:
    def test_name_sanitization_is_stable_and_legal(self):
        registry = MetricsRegistry()
        with obs.enabled_scope():
            registry.counter("weird metric-name!{}").inc()
            registry.counter("7starts.with.digit").inc(2)
        text = registry_to_prometheus(registry)
        assert "weird_metric_name___ 1" in text
        assert "_7starts_with_digit 2" in text
        # Legal exposition names only: every sample line parses back.
        parsed = parse_prometheus(text)
        assert parsed["weird_metric_name___"]["value"] == 1.0
        assert parsed["_7starts_with_digit"]["value"] == 2.0

    def test_label_value_escaping_round_trips(self):
        ring = TimeSeriesRing(capacity=4)
        nasty = 'queue "depth"\nwith\\slashes'
        ring.record(nasty, 7.0)
        text = timeseries_to_prometheus(ring)
        assert '\\"depth\\"' in text
        assert "\\n" in text
        assert "\\\\slashes" in text
        parsed = parse_prometheus(text)
        samples = parsed["repro_timeseries"]["samples"]
        assert samples == [{"labels": {"series": nasty}, "value": 7.0}]

    def test_timeseries_gauge_family_exposes_latest(self):
        ring = TimeSeriesRing(capacity=4)
        for v in (1.0, 2.0, 9.0):
            ring.record("ingest_edges_per_s", v)
        parsed = parse_prometheus(timeseries_to_prometheus(ring))
        samples = parsed["repro_timeseries"]["samples"]
        assert samples[0]["labels"] == {"series": "ingest_edges_per_s"}
        assert samples[0]["value"] == 9.0


class TestTimeSeriesJsonl:
    def test_round_trip_is_lossless(self):
        ring = TimeSeriesRing(capacity=8)
        for i in range(5):
            ring.record("a", float(i), ts=float(100 + i))
            ring.record("b", float(-i), ts=float(100 + i))
        back = timeseries_from_jsonl(timeseries_to_jsonl(ring))
        for name in ("a", "b"):
            ts0, v0 = ring.series(name)
            ts1, v1 = back.series(name)
            assert ts1.tolist() == ts0.tolist()
            assert v1.tolist() == v0.tolist()

    def test_round_trip_after_wraparound(self):
        ring = TimeSeriesRing(capacity=4)
        for i in range(11):
            ring.record("q", float(i), ts=float(i))
        back = timeseries_from_jsonl(timeseries_to_jsonl(ring))
        assert back.series("q")[1].tolist() == [7.0, 8.0, 9.0, 10.0]

    def test_empty_ring(self):
        assert timeseries_to_jsonl(TimeSeriesRing()) == ""
        back = timeseries_from_jsonl("")
        assert back.names() == []
