"""End-to-end observability tests over the real hot paths.

The acceptance contract: with instrumentation disabled (the default) the
AccessStats counts — and therefore every modeled-throughput number — are
bit-identical to an uninstrumented run; with it enabled, the trace
tree's per-batch deltas sum to the store's own totals, the engine
publishes one mode decision per iteration, and the stores publish their
counters under the documented prefixes.
"""

import numpy as np
import pytest

import repro.obs as obs
from repro.bench.harness import deletion_run, insertion_run, make_store
from repro.core.parallel import PartitionedGraphTinker
from repro.engine import HybridEngine
from repro.engine.algorithms import BFS
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.workloads.rmat import rmat_edges
from repro.workloads.streams import EdgeStream


@pytest.fixture
def fresh_obs():
    """Isolated tracer + registry, enabled for the test body."""
    tracer, registry = Tracer(), MetricsRegistry()
    prior_t, prior_r = obs.set_tracer(tracer), obs.set_registry(registry)
    obs.enable()
    yield tracer, registry
    obs.disable()
    obs.set_tracer(prior_t)
    obs.set_registry(prior_r)


def _edges(n=3000, scale=9, seed=7):
    return rmat_edges(scale, n, seed=seed)


class TestDisabledParity:
    """Instrumentation off (default) must not perturb the cost model."""

    @pytest.mark.parametrize("kind", ["graphtinker", "stinger"])
    def test_access_counts_identical_with_obs_off_and_on(self, kind):
        edges = _edges()

        def run(enabled):
            tracer, registry = Tracer(), MetricsRegistry()
            prior_t, prior_r = obs.set_tracer(tracer), obs.set_registry(registry)
            if enabled:
                obs.enable()
            try:
                store = make_store(kind)
                insertion_run(store, EdgeStream(edges, 1000))
                return store.stats.as_dict()
            finally:
                obs.disable()
                obs.set_tracer(prior_t)
                obs.set_registry(prior_r)

        assert run(False) == run(True)

    def test_no_spans_or_metrics_recorded_by_default(self):
        tracer, registry = Tracer(), MetricsRegistry()
        prior_t, prior_r = obs.set_tracer(tracer), obs.set_registry(registry)
        try:
            store = make_store("graphtinker")
            insertion_run(store, EdgeStream(_edges(500), 250))
            assert tracer.roots == []
            assert registry.collect() == {}
        finally:
            obs.set_tracer(prior_t)
            obs.set_registry(prior_r)


class TestTraceTreeSumsToStoreTotals:
    def test_insertion_spans_sum_to_store_stats(self, fresh_obs):
        tracer, _ = fresh_obs
        store = make_store("graphtinker")
        insertion_run(store, EdgeStream(_edges(), 600))
        spans = tracer.find("insert_batch")
        assert len(spans) == 5
        merged = sum((s.stats_delta for s in spans), start=type(store.stats)())
        assert merged.as_dict() == store.stats.as_dict()

    def test_deletion_spans_carry_deltas(self, fresh_obs):
        tracer, _ = fresh_obs
        edges = _edges(1000)
        store = make_store("graphtinker")
        store.insert_batch(edges)
        before = store.stats.snapshot()
        deletion_run(store, EdgeStream(edges, 500))
        spans = tracer.find("delete_batch")
        assert len(spans) == 2
        merged = sum((s.stats_delta for s in spans), start=type(store.stats)())
        assert merged.as_dict() == store.stats.delta(before).as_dict()
        assert merged.edges_deleted > 0


class TestEngineSpansAndMetrics:
    def test_one_span_per_mode_decision(self, fresh_obs):
        tracer, registry = fresh_obs
        store = make_store("graphtinker")
        store.insert_batch(_edges())
        engine = HybridEngine(store, BFS(), policy="hybrid")
        engine.reset(roots=[int(_edges()[0, 0])])
        result = engine.compute()

        compute_spans = tracer.find("engine.compute")
        assert len(compute_spans) == 1
        iteration_spans = compute_spans[0].children
        assert len(iteration_spans) == result.n_iterations
        assert [s.name for s in iteration_spans] == [
            f"engine.{m}" for m in result.modes_used()
        ]

        n_full = sum(1 for m in result.modes_used() if m == "FP")
        n_incr = result.n_iterations - n_full
        snap = registry.collect()
        assert snap.get("engine.mode.full", 0) == n_full
        assert snap.get("engine.mode.incremental", 0) == n_incr
        assert snap["engine.iterations"] == result.n_iterations

    def test_iteration_span_deltas_sum_to_compute_delta(self, fresh_obs):
        tracer, _ = fresh_obs
        store = make_store("graphtinker")
        store.insert_batch(_edges())
        engine = HybridEngine(store, BFS(), policy="full")
        engine.reset(roots=[int(_edges()[0, 0])])
        engine.compute()
        compute = tracer.find("engine.compute")[0]
        child_sum = sum((c.stats_delta for c in compute.children),
                        start=type(store.stats)())
        assert child_sum.as_dict() == compute.stats_delta.as_dict()


class TestStorePublication:
    def test_graphtinker_publishes_gt_prefixed_counters(self, fresh_obs):
        _, registry = fresh_obs
        store = make_store("graphtinker")
        store.insert_batch(_edges())
        snap = registry.collect()
        assert snap["gt.edges.inserted"] == store.stats.edges_inserted
        assert snap["gt.workblock.fetches"] == store.stats.workblock_fetches
        assert snap["gt.sgh.lookups"] == store.stats.hash_lookups

    def test_stinger_publishes_stinger_prefixed_counters(self, fresh_obs):
        _, registry = fresh_obs
        store = make_store("stinger")
        store.insert_batch(_edges(800))
        snap = registry.collect()
        assert snap["stinger.edges.inserted"] == store.stats.edges_inserted
        assert snap["stinger.block.random_reads"] == store.stats.random_block_reads

    def test_partitioned_store_publishes_part_prefix(self, fresh_obs):
        _, registry = fresh_obs
        store = PartitionedGraphTinker(4)
        store.insert_batch(_edges(1200))
        snap = registry.collect()
        assert snap["part.partitions"] == 4
        assert snap["part.edges.inserted"] == store.merged_stats().edges_inserted
