"""Tests for repro.obs.metrics: instruments, registry, enabled gating."""

import threading

import pytest

import repro.obs as obs
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


@pytest.fixture
def registry():
    r = MetricsRegistry()
    prior = obs.set_registry(r)
    obs.enable()
    yield r
    obs.disable()
    obs.set_registry(prior)


class TestCounter:
    def test_inc(self, registry):
        c = registry.counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative(self, registry):
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)

    def test_noop_when_disabled(self):
        obs.disable()
        c = Counter("c")
        c.inc(10)
        assert c.value == 0


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("g")
        g.set(3.5)
        g.inc(0.5)
        g.dec(1.0)
        assert g.value == 3.0

    def test_noop_when_disabled(self):
        obs.disable()
        g = Gauge("g")
        g.set(9)
        assert g.value == 0


class TestHistogram:
    def test_record_and_summary(self, registry):
        h = registry.histogram("h", buckets=(1, 10, 100))
        for v in (0.5, 5, 50, 500):
            h.record(v)
        assert h.count == 4
        assert h.total == 555.5
        assert h.max_value == 500
        assert h.mean == pytest.approx(555.5 / 4)

    def test_empty_mean_is_zero(self, registry):
        assert registry.histogram("h").mean == 0.0

    def test_cumulative_counts(self, registry):
        h = registry.histogram("h", buckets=(1, 10, 100))
        for v in (0.5, 5, 50, 500):
            h.record(v)
        assert h.cumulative_counts() == [
            (1.0, 1), (10.0, 2), (100.0, 3), (float("inf"), 4)
        ]

    def test_boundary_lands_in_its_bucket(self, registry):
        h = registry.histogram("h", buckets=(1, 10))
        h.record(10)  # le="10" is inclusive, Prometheus-style
        assert h.cumulative_counts() == [(1.0, 0), (10.0, 1), (float("inf"), 1)]

    def test_rejects_bad_buckets(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(5, 1))
        with pytest.raises(ValueError):
            registry.histogram("h2", buckets=())

    def test_noop_when_disabled(self):
        obs.disable()
        h = Histogram("h")
        h.record(5)
        assert h.count == 0


class TestRegistry:
    def test_get_or_create_returns_same_instance(self, registry):
        assert registry.counter("x") is registry.counter("x")

    def test_kind_conflict_raises(self, registry):
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_contains_and_get(self, registry):
        registry.counter("x")
        assert "x" in registry
        assert "y" not in registry
        assert registry.get("x").name == "x"
        assert registry.get("y") is None

    def test_collect_snapshot(self, registry):
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        h = registry.histogram("h")
        h.record(4)
        snap = registry.collect()
        assert snap["c"] == 2
        assert snap["g"] == 1.5
        assert snap["h"] == {"count": 1.0, "sum": 4.0, "max": 4.0, "mean": 4.0}

    def test_instruments_sorted_by_name(self, registry):
        registry.counter("b")
        registry.counter("a")
        assert [i.name for i in registry.instruments()] == ["a", "b"]

    def test_reset_forgets_everything(self, registry):
        registry.counter("c").inc()
        registry.reset()
        assert "c" not in registry

    def test_concurrent_get_or_create(self, registry):
        seen = []
        barrier = threading.Barrier(8)

        def work():
            barrier.wait()
            c = registry.counter("shared")
            seen.append(c)
            for _ in range(100):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(c is seen[0] for c in seen)
        assert seen[0].value > 0
