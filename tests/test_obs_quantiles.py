"""Tests for the shared quantile sketch (accuracy, merging, gating).

The sketch's contract has three load-bearing clauses:

* **exact under capacity** — while every observation fits the reservoir,
  quantiles equal ``numpy.percentile`` bit-for-bit (this is what lets
  :mod:`repro.core.probes` delegate here);
* **bounded + sane over capacity** — the reservoir stays a uniform
  sample, so quantile estimates land near the truth on adversarial
  shapes;
* **mergeable** — combining per-shard sketches behaves like sketching
  the concatenated stream (exactly, when everything fits).
"""

import numpy as np
import pytest

import repro.obs as obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.quantiles import QuantileSketch, quantile_key


def adversarial_streams():
    rng = np.random.default_rng(42)
    return {
        "constant": np.full(400, 3.25),
        "bimodal": np.concatenate([rng.normal(1.0, 0.05, 300),
                                   rng.normal(100.0, 5.0, 100)]),
        "heavy_tail": rng.pareto(1.5, 400) + 1.0,
        "tiny": np.array([7.0, 1.0, 9.0]),          # n << capacity
        "single": np.array([42.0]),
        "sorted_ascending": np.arange(500, dtype=np.float64),
    }


class TestExactUnderCapacity:
    @pytest.mark.parametrize("name", sorted(adversarial_streams()))
    def test_matches_numpy_percentile_bitwise(self, name):
        values = adversarial_streams()[name]
        sketch = QuantileSketch.from_array(values)
        assert sketch.exact
        for q in (0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0):
            assert sketch.quantile(q) == float(np.percentile(values, q * 100))

    @pytest.mark.parametrize("name", sorted(adversarial_streams()))
    def test_summary_moments_match_numpy(self, name):
        values = adversarial_streams()[name]
        sketch = QuantileSketch.from_array(values)
        summary = sketch.summary()
        assert summary["count"] == values.size
        assert summary["min"] == float(values.min())
        assert summary["max"] == float(values.max())
        assert summary["mean"] == pytest.approx(float(values.mean()),
                                                rel=1e-12)

    def test_streaming_matches_bulk_under_capacity(self):
        values = adversarial_streams()["bimodal"]
        streamed = QuantileSketch(capacity=values.size)
        for v in values:
            streamed.observe(v)
        bulk = QuantileSketch.from_array(values)
        assert streamed.quantile_values() == bulk.quantile_values()

    def test_empty_sketch_reports_zeros(self):
        sketch = QuantileSketch()
        assert sketch.count == 0
        assert sketch.quantile(0.5) == 0.0
        assert sketch.summary()["p99"] == 0.0


class TestOverCapacity:
    def test_reservoir_stays_bounded(self):
        sketch = QuantileSketch(capacity=64)
        for v in range(10_000):
            sketch.observe(float(v))
        assert sketch.count == 10_000
        assert sketch.samples().size == 64
        assert not sketch.exact

    def test_estimates_near_truth_on_uniform(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(0.0, 1.0, 50_000)
        sketch = QuantileSketch(capacity=512, seed=1)
        sketch.observe_many(values)
        for q in (0.5, 0.9, 0.99):
            assert sketch.quantile(q) == pytest.approx(q, abs=0.08)

    def test_min_max_sum_stay_exact_over_capacity(self):
        rng = np.random.default_rng(3)
        values = rng.pareto(1.5, 20_000) + 1.0
        sketch = QuantileSketch(capacity=128)
        sketch.observe_many(values)
        assert sketch.min_value == float(values.min())
        assert sketch.max_value == float(values.max())
        assert sketch.total == pytest.approx(float(values.sum()), rel=1e-9)


class TestMerge:
    def test_exact_merge_equals_concatenated_stream(self):
        a, b = np.arange(50.0), np.arange(100.0, 140.0)
        left = QuantileSketch(capacity=256)
        left.observe_many(a)
        right = QuantileSketch(capacity=256)
        right.observe_many(b)
        left.merge(right)
        both = np.concatenate([a, b])
        assert left.exact
        for q in (0.5, 0.9, 0.99):
            assert left.quantile(q) == float(np.percentile(both, q * 100))

    def test_merge_associative_under_capacity(self):
        rng = np.random.default_rng(9)
        chunks = [rng.normal(i, 1.0, 40) for i in range(3)]

        def sketch_of(arrays):
            out = QuantileSketch(capacity=512)
            for arr in arrays:
                part = QuantileSketch(capacity=512)
                part.observe_many(arr)
                out.merge(part)
            return out

        ab_c = sketch_of(chunks)  # (a + b) + c, left fold
        a_bc = QuantileSketch(capacity=512)
        bc = QuantileSketch(capacity=512)
        bc.observe_many(chunks[1])
        tail = QuantileSketch(capacity=512)
        tail.observe_many(chunks[2])
        bc.merge(tail)
        a_bc.observe_many(chunks[0])
        a_bc.merge(bc)
        # Under capacity both groupings retain every sample, so the
        # quantiles agree bit-for-bit regardless of association order.
        assert ab_c.quantile_values() == a_bc.quantile_values()
        assert ab_c.count == a_bc.count
        assert ab_c.total == pytest.approx(a_bc.total, rel=1e-12)

    def test_lossy_merge_tracks_concatenated_truth(self):
        rng = np.random.default_rng(5)
        a = rng.normal(10.0, 1.0, 30_000)
        b = rng.normal(20.0, 1.0, 10_000)
        left = QuantileSketch(capacity=512, seed=2)
        left.observe_many(a)
        right = QuantileSketch(capacity=512, seed=3)
        right.observe_many(b)
        left.merge(right)
        both = np.concatenate([a, b])
        assert left.count == both.size
        # A uniform 512-sample reservoir of the 40k stream: the p50 sits
        # between the modes and must reflect the 3:1 mix, not either side.
        assert left.quantile(0.5) == pytest.approx(
            float(np.percentile(both, 50)), abs=1.0)
        assert left.quantile(0.99) == pytest.approx(
            float(np.percentile(both, 99)), abs=1.5)

    def test_merge_empty_is_identity(self):
        sketch = QuantileSketch.from_array([1.0, 2.0, 3.0])
        before = sketch.summary()
        sketch.merge(QuantileSketch())
        assert sketch.summary() == before


class TestGatingAndRegistry:
    def test_record_is_gated_observe_is_not(self):
        sketch = QuantileSketch()
        assert not obs.is_enabled()
        sketch.record(1.0)
        assert sketch.count == 0
        sketch.observe(1.0)
        assert sketch.count == 1
        with obs.enabled_scope():
            sketch.record(2.0)
        assert sketch.count == 2

    def test_registry_accessor_registers_and_collects(self):
        registry = MetricsRegistry()
        sketch = registry.quantile("svc.latency_ms", "per-op latency")
        assert registry.quantile("svc.latency_ms") is sketch
        sketch.observe_many([1.0, 2.0, 3.0, 4.0])
        collected = registry.collect()
        assert collected["svc.latency_ms"]["count"] == 4
        assert collected["svc.latency_ms"]["p50"] == 2.5

    def test_state_restore_round_trip(self):
        sketch = QuantileSketch(capacity=32)
        sketch.observe_many(np.arange(100.0))
        back = QuantileSketch(capacity=32).restore(sketch.state())
        assert back.summary() == sketch.summary()

    def test_quantile_key_formats(self):
        assert quantile_key(0.5) == "p50"
        assert quantile_key(0.99) == "p99"
        assert quantile_key(0.999) == "p99.9"

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            QuantileSketch(capacity=0)
        with pytest.raises(ValueError):
            QuantileSketch(quantiles=(0.9, 0.5))
        with pytest.raises(ValueError):
            QuantileSketch(quantiles=(0.0,))
