"""Tests for the flight recorder, time-series ring, and sampler.

Covers the black-box contract (bounded event ring, span capture via the
tracer listener, post-mortem dumps + the ``repro blackbox`` loader), the
ring's wraparound/concurrency behaviour, and the service integrations:
breaker-open and recovery leave ``blackbox-*.json`` dumps, ``health()``
carries uptime / checkpoint age / last event / time-series vitals.
"""

import json
import threading

import numpy as np
import pytest

import repro.obs as obs
from repro.errors import ServiceError
from repro.obs.recorder import (
    BLACKBOX_SCHEMA,
    FlightRecorder,
    blackbox_path,
    get_recorder,
    list_blackboxes,
    load_blackbox,
    set_recorder,
)
from repro.obs.timeseries import MetricsSampler, TimeSeriesRing
from repro.service import GraphService, TransientFaultInjector, recover
from repro.workloads import rmat_edges


@pytest.fixture
def recorder():
    """A fresh default recorder, restored (and obs disabled) afterwards."""
    fresh = FlightRecorder(capacity=16, span_capacity=8)
    prior = set_recorder(fresh)
    try:
        yield fresh
    finally:
        obs.disable()
        set_recorder(prior)


@pytest.fixture
def edges():
    return rmat_edges(8, 2000, seed=7)


def drive(svc, edges, step=250):
    for i in range(0, edges.shape[0], step):
        svc.submit_insert(edges[i:i + step])
    svc.flush_now()


class TestFlightRecorder:
    def test_record_is_gated_observe_is_not(self, recorder):
        recorder.record("wal.retry", attempt=1)
        assert recorder.events() == []
        recorder.observe("wal.retry", attempt=1)
        assert len(recorder.events()) == 1
        with obs.enabled_scope():
            recorder.record("wal.retry", attempt=2)
        assert len(recorder.events()) == 2

    def test_ring_is_bounded_but_total_counts_on(self, recorder):
        for i in range(40):
            recorder.observe("fsck", i=i)
        events = recorder.events()
        assert len(events) == 16
        assert recorder.n_events == 40
        assert [e["detail"]["i"] for e in events] == list(range(24, 40))

    def test_kind_filter_and_last_event(self, recorder):
        recorder.observe("wal.retry", attempt=1)
        recorder.observe("breaker.open", consecutive=3)
        assert [e["kind"] for e in recorder.events("wal.retry")] == ["wal.retry"]
        assert recorder.last_event()["kind"] == "breaker.open"

    def test_tracer_listener_captures_root_spans(self, recorder):
        with obs.enabled_scope():
            with obs.span("outer", phase="x"):
                with obs.span("inner"):
                    pass
        spans = recorder.spans()
        assert [s["name"] for s in spans] == ["outer"]
        assert spans[0]["n_descendants"] == 1
        assert spans[0]["attrs"] == {"phase": "x"}

    def test_dump_and_load_round_trip(self, recorder, tmp_path):
        recorder.observe("breaker.open", consecutive=2)
        path = recorder.dump(blackbox_path(tmp_path, "breaker-open"),
                             "breaker-open", extra="ctx")
        record = load_blackbox(path)
        assert record["schema"] == BLACKBOX_SCHEMA
        assert record["reason"] == "breaker-open"
        assert record["context"] == {"extra": "ctx"}
        assert record["events"][-1]["kind"] == "breaker.open"

    def test_load_rejects_non_blackbox_json(self, tmp_path):
        other = tmp_path / "report.json"
        other.write_text(json.dumps({"schema": "something-else"}))
        with pytest.raises(ValueError, match="not a flight-recorder dump"):
            load_blackbox(other)

    def test_list_blackboxes_newest_first(self, recorder, tmp_path):
        import os

        first = recorder.dump(blackbox_path(tmp_path, "recovery"), "recovery")
        second = recorder.dump(blackbox_path(tmp_path, "fatal"), "fatal")
        os.utime(first, (1_000_000, 1_000_000))  # force distinct mtimes
        assert list_blackboxes(tmp_path) == [second, first]
        assert list_blackboxes(tmp_path / "missing") == []


class TestTimeSeriesRing:
    def test_wraparound_keeps_newest_window_in_order(self):
        ring = TimeSeriesRing(capacity=4)
        for i in range(10):
            ring.record("q", float(i), ts=float(i))
        ts, values = ring.series("q")
        assert values.tolist() == [6.0, 7.0, 8.0, 9.0]
        assert ts.tolist() == [6.0, 7.0, 8.0, 9.0]
        assert ring.latest("q") == (9.0, 9.0)

    def test_missing_series_is_empty_not_error(self):
        ring = TimeSeriesRing()
        ts, values = ring.series("nope")
        assert ts.size == 0 and values.size == 0
        assert ring.latest("nope") is None

    def test_summary_shape(self):
        ring = TimeSeriesRing(capacity=8)
        for v in (1.0, 2.0, 3.0):
            ring.record("depth", v)
        summary = ring.summary()["depth"]
        assert summary["n"] == 3
        assert summary["latest"] == 3.0
        assert summary["mean"] == 2.0

    def test_concurrent_writers_and_readers(self):
        ring = TimeSeriesRing(capacity=64)
        stop = threading.Event()
        errors: list[Exception] = []

        def writer(name):
            i = 0
            while not stop.is_set():
                ring.record(name, float(i))
                i += 1

        def reader():
            while not stop.is_set():
                try:
                    for name in ring.names():
                        ts, values = ring.series(name)
                        assert ts.shape == values.shape
                        assert values.size <= 64
                        # Chronological: timestamps never go backwards.
                        assert np.all(np.diff(ts) >= 0)
                except Exception as exc:  # noqa: BLE001 - collected below
                    errors.append(exc)
                    return

        threads = [threading.Thread(target=writer, args=(f"s{i}",))
                   for i in range(3)] + [threading.Thread(target=reader)
                                         for _ in range(2)]
        for t in threads:
            t.start()
        threading.Event().wait(0.3)
        stop.set()
        for t in threads:
            t.join()
        assert errors == []
        assert all(ring.series(f"s{i}")[1].size == 64 for i in range(3))


class TestMetricsSampler:
    def test_gauge_and_rate_probes(self):
        state = {"cum": 0.0}
        sampler = MetricsSampler(interval=0.01)
        sampler.add_gauge("depth", lambda: 5.0)
        sampler.add_rate("edges_per_s", lambda: state["cum"])
        sampler.sample_once(now=100.0)  # seeds the rate baseline
        state["cum"] = 300.0
        sampler.sample_once(now=103.0)
        _, depth = sampler.ring.series("depth")
        assert depth.tolist() == [5.0, 5.0]
        _, rate = sampler.ring.series("edges_per_s")
        assert rate.tolist() == [100.0]  # 300 over 3 seconds

    def test_probe_exceptions_are_swallowed(self):
        sampler = MetricsSampler(interval=0.01)
        sampler.add_gauge("bad", lambda: 1 / 0)
        sampler.add_gauge("good", lambda: 1.0)
        sampler.sample_once()
        assert sampler.ring.series("bad")[1].size == 0
        assert sampler.ring.series("good")[1].size == 1

    def test_thread_lifecycle(self):
        sampler = MetricsSampler(interval=0.01)
        sampler.add_gauge("x", lambda: 1.0)
        with sampler:
            assert sampler.running
            threading.Event().wait(0.08)
        assert not sampler.running
        assert sampler.ring.series("x")[1].size >= 2


class TestServiceIntegration:
    def test_breaker_open_dumps_blackbox(self, recorder, tmp_path, edges):
        obs.enable()
        injector = TransientFaultInjector(fail_every=1, hard=True)
        svc = GraphService(tmp_path, batch_edges=200, flush_interval=0.005,
                           injector=injector, breaker_threshold=2,
                           breaker_reset=60.0)
        try:
            with pytest.raises(ServiceError):
                drive(svc, edges)
        finally:
            svc.close()
        dumps = list_blackboxes(tmp_path)
        assert [d.name for d in dumps].count("blackbox-breaker-open.json") == 1
        record = load_blackbox(dumps[0])
        assert record["reason"] == "breaker-open"
        kinds = [e["kind"] for e in record["events"]]
        assert "flush.failed" in kinds
        assert "breaker.open" in kinds
        health = svc.health()
        assert health["last_event"]["kind"] in ("breaker.open", "flush.failed")

    def test_recovery_blackbox_always_populated(self, tmp_path, edges):
        with GraphService(tmp_path, batch_edges=400,
                          flush_interval=0.005) as svc:
            drive(svc, edges)
        assert not obs.is_enabled()
        result = recover(tmp_path)
        assert result.blackbox is not None
        assert result.blackbox["reason"] == "recovery"
        assert result.blackbox["last_seq"] == result.last_seq
        assert result.blackbox["replayed_records"] == result.replayed_records
        # Master switch down: facts in the result, no file side effects.
        assert list_blackboxes(tmp_path) == []

    def test_recovery_dump_written_when_enabled(self, recorder, tmp_path,
                                                edges):
        with GraphService(tmp_path, batch_edges=400,
                          flush_interval=0.005) as svc:
            drive(svc, edges)
        obs.enable()
        result = recover(tmp_path)
        dumps = [d.name for d in list_blackboxes(tmp_path)]
        assert "blackbox-recovery.json" in dumps
        record = load_blackbox(blackbox_path(tmp_path, "recovery"))
        assert record["context"]["last_seq"] == result.last_seq
        assert get_recorder().last_event()["kind"] == "recovery"

    def test_health_gains_uptime_and_checkpoint_age(self, tmp_path, edges):
        with GraphService(tmp_path, batch_edges=400,
                          flush_interval=0.005) as svc:
            drive(svc, edges[:500])
            health = svc.health()
            assert health["uptime_s"] >= 0.0
            assert health["last_checkpoint_age_s"] is None
            assert health["last_event"] is None or "kind" in health["last_event"]
            svc.checkpoint()
            age = svc.health()["last_checkpoint_age_s"]
            assert age is not None and age < 60.0

    def test_checkpoint_age_survives_reopen_from_disk(self, tmp_path, edges):
        with GraphService(tmp_path, batch_edges=400,
                          flush_interval=0.005) as svc:
            drive(svc, edges[:500])
            svc.checkpoint()
        svc, _ = GraphService.open(tmp_path)
        try:
            age = svc.health()["last_checkpoint_age_s"]
            assert age is not None and age < 60.0
        finally:
            svc.close()

    def test_sampler_rings_surface_in_health(self, tmp_path, edges):
        svc = GraphService(tmp_path, batch_edges=400, flush_interval=0.005,
                           sample_interval=0.02)
        try:
            drive(svc, edges[:1000])
            svc._sampler.sample_once()
            health = svc.health()
            assert "timeseries" in health
            assert "queue_depth" in health["timeseries"]
            ts, values = svc.timeseries.series("queue_depth")
            assert values.size >= 1
        finally:
            svc.close()
        assert not svc._sampler.running

    def test_no_sampler_by_default(self, tmp_path, edges):
        with GraphService(tmp_path, batch_edges=400,
                          flush_interval=0.005) as svc:
            drive(svc, edges[:250])
            assert svc.timeseries is None
            assert "timeseries" not in svc.health()
