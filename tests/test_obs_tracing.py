"""Tests for repro.obs.tracing: spans, nesting, gating, thread safety."""

import threading

import pytest

import repro.obs as obs
from repro.core.stats import AccessStats
from repro.obs.tracing import Span, Tracer


@pytest.fixture
def tracer():
    t = Tracer()
    prior = obs.set_tracer(t)
    obs.enable()
    yield t
    obs.disable()
    obs.set_tracer(prior)


class TestDisabledByDefault:
    def test_master_switch_starts_down(self):
        assert not obs.is_enabled()

    def test_span_records_nothing_when_disabled(self):
        t = Tracer()
        prior = obs.set_tracer(t)
        try:
            assert not obs.is_enabled()
            with obs.span("ignored") as sp:
                sp.set_attr("x", 1)  # no-op span accepts attrs silently
            assert t.roots == []
        finally:
            obs.set_tracer(prior)

    def test_enabled_scope_restores(self):
        assert not obs.is_enabled()
        with obs.enabled_scope():
            assert obs.is_enabled()
        assert not obs.is_enabled()


class TestSpanTree:
    def test_nesting_builds_a_tree(self, tracer):
        with obs.span("outer"):
            with obs.span("inner_a"):
                pass
            with obs.span("inner_b"):
                pass
        assert [r.name for r in tracer.roots] == ["outer"]
        assert [c.name for c in tracer.roots[0].children] == ["inner_a", "inner_b"]

    def test_wall_time_recorded(self, tracer):
        with obs.span("timed"):
            pass
        assert tracer.roots[0].duration >= 0

    def test_attrs_and_set_attr(self, tracer):
        with obs.span("s", k=1) as sp:
            sp.set_attr("late", "v")
        assert tracer.roots[0].attrs == {"k": 1, "late": "v"}

    def test_stats_delta_brackets_span_body(self, tracer):
        stats = AccessStats()
        stats.random_block_reads = 10
        with obs.span("s", stats=stats):
            stats.random_block_reads += 7
        delta = tracer.roots[0].stats_delta
        assert delta.random_block_reads == 7
        # the bracket must not mutate the live counters
        assert stats.random_block_reads == 17

    def test_merged_delta_sums_children(self, tracer):
        stats = AccessStats()
        with obs.span("parent"):
            with obs.span("a", stats=stats):
                stats.rhh_swaps += 2
            with obs.span("b", stats=stats):
                stats.rhh_swaps += 3
        assert tracer.roots[0].merged_delta().rhh_swaps == 5

    def test_walk_preorder_with_depths(self, tracer):
        with obs.span("root"):
            with obs.span("child"):
                with obs.span("grandchild"):
                    pass
        walked = list(tracer.roots[0].walk())
        assert [(d, s.name) for d, s in walked] == [
            (0, "root"), (1, "child"), (2, "grandchild")
        ]

    def test_find_by_name(self, tracer):
        with obs.span("batch"):
            pass
        with obs.span("batch"):
            pass
        assert len(tracer.find("batch")) == 2

    def test_reset_drops_roots(self, tracer):
        with obs.span("s"):
            pass
        tracer.reset()
        assert tracer.roots == []

    def test_span_recorded_even_when_body_raises(self, tracer):
        with pytest.raises(RuntimeError):
            with obs.span("failing"):
                raise RuntimeError("boom")
        assert [r.name for r in tracer.roots] == ["failing"]


class TestSampling:
    def test_sample_every_records_every_nth_root(self):
        t = Tracer(sample_every=3)
        prior = obs.set_tracer(t)
        obs.enable()
        try:
            for _ in range(7):
                with obs.span("root"):
                    with obs.span("child"):
                        pass
        finally:
            obs.disable()
            obs.set_tracer(prior)
        assert len(t.roots) == 3  # roots 0, 3, 6
        assert all(len(r.children) == 1 for r in t.roots)

    def test_sample_every_validates(self):
        with pytest.raises(ValueError):
            Tracer(sample_every=0)


class TestThreadSafety:
    def test_threads_build_independent_subtrees(self, tracer):
        barrier = threading.Barrier(4)

        def work(i):
            barrier.wait()
            with obs.span(f"thread{i}"):
                for _ in range(50):
                    with obs.span("leaf"):
                        pass

        threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(r.name for r in tracer.roots) == [
            "thread0", "thread1", "thread2", "thread3"
        ]
        assert all(len(r.children) == 50 for r in tracer.roots)


class TestSpanDataclass:
    def test_n_descendants(self):
        root = Span("r", children=[Span("a", children=[Span("b")]), Span("c")])
        assert root.n_descendants == 3
