"""Tests for service overload protection: retries, breaker, shedding.

The durability contract under faults:

* **Transient** WAL I/O errors (the kind that clear after a retry) must
  be invisible to callers — with retries enabled the final store equals
  a fault-free run, because each WAL append retries individually against
  a record-aligned log.
* **Persistent** failures must not hang submitters: after
  ``breaker_threshold`` consecutive flush failures the circuit breaker
  opens and everything fails fast with :class:`ServiceError` until the
  reset window lets a half-open probe through.
"""

import time

import numpy as np
import pytest

from repro.core.graphtinker import GraphTinker
from repro.errors import ServiceError
from repro.service import (
    GraphService,
    StoreCorruptor,
    TransientFaultInjector,
    recover,
)
from repro.workloads import rmat_edges


def edge_set(store):
    src, dst, _ = store.analytics_edges()
    return set(zip(src.tolist(), dst.tolist()))


@pytest.fixture
def edges():
    return rmat_edges(8, 2500, seed=7)


def drive(svc, edges, step=250):
    for i in range(0, edges.shape[0], step):
        svc.submit_insert(edges[i:i + step])
    svc.flush_now()


class TestRetry:
    def test_transient_faults_with_retries_match_clean_run(self, tmp_path,
                                                           edges):
        injector = TransientFaultInjector(fail_every=2, fail_times=2)
        with GraphService(tmp_path, batch_edges=400, flush_interval=0.005,
                          injector=injector, max_retries=5) as svc:
            drive(svc, edges)
            got = edge_set(svc)
            n = svc.n_edges
        assert injector.injected > 0
        ref = GraphTinker()
        ref.insert_batch(edges)
        assert got == edge_set(ref)
        assert n == ref.n_edges

    def test_recovery_after_faulty_run_is_consistent(self, tmp_path, edges):
        injector = TransientFaultInjector(fail_every=3, fail_times=1)
        with GraphService(tmp_path, batch_edges=400, flush_interval=0.005,
                          injector=injector, max_retries=3) as svc:
            drive(svc, edges)
        result = recover(tmp_path)
        ref = GraphTinker()
        ref.insert_batch(edges)
        assert edge_set(result.store) == edge_set(ref)
        assert result.fsck is not None and result.fsck.ok

    def test_no_retries_stays_fail_stop(self, tmp_path, edges):
        # Back-compat: defaults (max_retries=0, breaker_threshold=0) keep
        # PR 2's fail-stop semantics — first WAL error kills the service.
        injector = TransientFaultInjector(fail_every=1, fail_times=1)
        svc = GraphService(tmp_path, batch_edges=400, flush_interval=0.005,
                           injector=injector)
        try:
            with pytest.raises(ServiceError):
                drive(svc, edges)
            assert svc.fatal_error is not None
        finally:
            svc.close()


class TestBreaker:
    def test_opens_after_threshold_and_fails_fast(self, tmp_path, edges):
        injector = TransientFaultInjector(fail_every=1, hard=True)
        svc = GraphService(tmp_path, batch_edges=200, flush_interval=0.005,
                           injector=injector, max_retries=1,
                           breaker_threshold=2, breaker_reset=60.0)
        try:
            with pytest.raises(ServiceError):
                drive(svc, edges)
            health = svc.health()
            assert health["breaker"]["state"] == "open"
            assert not health["ok"]
            # Open breaker: submit rejects immediately, no queueing.
            start = time.monotonic()
            with pytest.raises(ServiceError, match="circuit breaker open"):
                svc.submit_insert(edges[:100])
            assert time.monotonic() - start < 0.5
            assert svc.fatal_error is None  # breaker != fail-stop
        finally:
            svc.close()

    def test_queued_tickets_fail_when_breaker_trips(self, tmp_path, edges):
        injector = TransientFaultInjector(fail_every=1, hard=True)
        svc = GraphService(tmp_path, batch_edges=10_000, flush_interval=60,
                           injector=injector, breaker_threshold=1)
        try:
            tickets = [svc.submit_insert(edges[i:i + 200])
                       for i in range(0, 1000, 200)]
            with pytest.raises(ServiceError):
                svc.flush_now(timeout=10)
            for ticket in tickets:
                with pytest.raises((ServiceError, OSError)):
                    ticket.wait(10)
        finally:
            svc.close()

    def test_half_open_probe_recloses_breaker(self, tmp_path, edges):
        # Two injected failures trip the breaker (threshold 1 + one
        # retry-less flush); the injector then runs dry, so the half-open
        # probe after the reset window succeeds and re-closes it.
        injector = TransientFaultInjector(fail_every=1, hard=True, total=2)
        svc = GraphService(tmp_path, batch_edges=200, flush_interval=0.005,
                           injector=injector, max_retries=1,
                           breaker_threshold=1, breaker_reset=0.1)
        try:
            with pytest.raises(ServiceError):
                drive(svc, edges[:400])
            assert svc.health()["breaker"]["state"] == "open"
            time.sleep(0.15)
            ticket = svc.submit_insert(edges[:200])
            assert ticket.wait(10) >= 1
            assert svc.health()["breaker"]["state"] == "closed"
            assert svc.health()["ok"]
        finally:
            svc.close()


class TestShedding:
    def test_reads_shed_under_queue_pressure(self, tmp_path, edges):
        # Latency trigger far away + huge batch trigger: submissions sit
        # in the queue, so depth-based shedding is deterministic.
        svc = GraphService(tmp_path, batch_edges=10_000, flush_interval=60,
                           shed_reads_at=2)
        try:
            svc.submit_insert(edges[:100])
            svc.submit_insert(edges[100:200])
            with pytest.raises(ServiceError, match="shedding reads"):
                svc.degree(0)
            with pytest.raises(ServiceError):
                svc.neighbors(0)
            assert svc.health()["shedding_reads"]
            svc.flush_now()
            assert svc.degree(0) >= 0  # queue drained: reads serve again
            assert not svc.health()["shedding_reads"]
        finally:
            svc.close()

    def test_shedding_disabled_by_default(self, tmp_path, edges):
        with GraphService(tmp_path, batch_edges=10_000,
                          flush_interval=60) as svc:
            svc.submit_insert(edges[:500])
            svc.degree(0)  # deep queue, reads still served
            svc.flush_now()


class TestHealthAndFsck:
    def test_health_snapshot_shape(self, tmp_path, edges):
        with GraphService(tmp_path, batch_edges=400,
                          flush_interval=0.005) as svc:
            drive(svc, edges[:500])
            health = svc.health()
        for key in ("queue_depth", "pending_edges", "applied_seq",
                    "cum_edges", "n_flushes", "breaker", "fatal",
                    "last_fsck", "ok"):
            assert key in health
        assert health["ok"]
        assert health["breaker"]["state"] == "closed"

    def test_open_runs_and_surfaces_post_recovery_fsck(self, tmp_path, edges):
        with GraphService(tmp_path, batch_edges=400,
                          flush_interval=0.005) as svc:
            drive(svc, edges)
        svc, result = GraphService.open(tmp_path)
        try:
            assert result.fsck is not None
            assert result.fsck.ok
            assert result.fsck.level == "quick"
            health = svc.health()
            assert health["last_fsck"] is not None
            assert health["last_fsck"]["ok"]
        finally:
            svc.close()

    def test_open_verify_none_skips_fsck(self, tmp_path, edges):
        with GraphService(tmp_path, batch_edges=400,
                          flush_interval=0.005) as svc:
            drive(svc, edges[:500])
        svc, result = GraphService.open(tmp_path, verify=None)
        try:
            assert result.fsck is None
            assert svc.health()["last_fsck"] is None
        finally:
            svc.close()

    def test_run_fsck_detects_and_repairs_live_store(self, tmp_path, edges):
        with GraphService(tmp_path, batch_edges=400,
                          flush_interval=0.005) as svc:
            drive(svc, edges)
            StoreCorruptor(svc._store, seed=2).corrupt("degree")
            report = svc.run_fsck(level="full")
            assert not report.ok
            assert not svc.health()["ok"]
            repair = svc.run_fsck(repair=True)
            assert repair.ok
            assert svc.health()["ok"]
