"""Public-surface contract tests: exports, docstrings, and doctests."""

import doctest
import importlib
import pkgutil

import pytest

import repro


PUBLIC_MODULES = [
    "repro",
    "repro.core",
    "repro.core.cal",
    "repro.core.config",
    "repro.core.edgeblock_array",
    "repro.core.graphtinker",
    "repro.core.hashing",
    "repro.core.parallel",
    "repro.core.pool",
    "repro.core.probes",
    "repro.core.robin_hood",
    "repro.core.sgh",
    "repro.core.stats",
    "repro.core.units",
    "repro.core.vertex_array",
    "repro.baselines",
    "repro.baselines.adjacency_matrix",
    "repro.baselines.csr",
    "repro.stinger",
    "repro.stinger.stinger",
    "repro.engine",
    "repro.engine.gas",
    "repro.engine.hybrid",
    "repro.engine.inconsistency",
    "repro.engine.modes",
    "repro.engine.paths",
    "repro.engine.algorithms",
    "repro.workloads",
    "repro.workloads.datasets",
    "repro.workloads.io",
    "repro.workloads.persistence",
    "repro.workloads.rmat",
    "repro.workloads.streams",
    "repro.bench",
    "repro.bench.costmodel",
    "repro.bench.harness",
    "repro.bench.metrics",
    "repro.bench.reporting",
    "repro.obs",
    "repro.obs.export",
    "repro.obs.hooks",
    "repro.obs.log",
    "repro.obs.metrics",
    "repro.obs.tracing",
    "repro.service",
    "repro.service.wal",
    "repro.service.checkpoint",
    "repro.service.recovery",
    "repro.service.service",
    "repro.service.faults",
    "repro.net",
    "repro.net.frames",
    "repro.net.protocol",
    "repro.net.readpath",
    "repro.net.server",
    "repro.net.client",
    "repro.net.aioclient",
    "repro.net.loadgen",
    "repro.cli",
    "repro.errors",
]


class TestExports:
    def test_version(self):
        assert repro.__version__

    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    @pytest.mark.parametrize("modname", PUBLIC_MODULES)
    def test_module_importable_and_documented(self, modname):
        mod = importlib.import_module(modname)
        assert mod.__doc__ and mod.__doc__.strip(), f"{modname} lacks a docstring"

    def test_no_unexpected_top_level_modules(self):
        found = {m.name for m in pkgutil.iter_modules(repro.__path__, "repro.")}
        assert found <= {
            "repro.core", "repro.stinger", "repro.engine", "repro.workloads",
            "repro.bench", "repro.baselines", "repro.obs", "repro.service",
            "repro.net", "repro.cli", "repro.errors", "repro.__main__",
        }, found


class TestPublicDocstrings:
    @pytest.mark.parametrize("cls_path", [
        ("repro", "GraphTinker"),
        ("repro", "GTConfig"),
        ("repro.stinger", "Stinger"),
        ("repro.engine", "HybridEngine"),
        ("repro.engine", "GASProgram"),
        ("repro.baselines", "CSRRebuildStore"),
        ("repro.baselines", "AdjacencyMatrixStore"),
    ])
    def test_public_classes_documented(self, cls_path):
        modname, clsname = cls_path
        cls = getattr(importlib.import_module(modname), clsname)
        assert cls.__doc__ and len(cls.__doc__.strip()) > 30

    def test_public_methods_of_graphtinker_documented(self):
        from repro import GraphTinker

        for name in ("insert_edge", "insert_batch", "delete_edge",
                     "delete_batch", "delete_vertex", "has_edge",
                     "edge_weight", "neighbors", "edges", "edge_arrays",
                     "analytics_edges", "check_invariants"):
            assert getattr(GraphTinker, name).__doc__, name


class TestDoctests:
    @pytest.mark.parametrize("modname", [
        "repro.core.graphtinker",
        "repro.stinger.stinger",
        "repro.engine.hybrid",
        "repro.bench.reporting",
    ])
    def test_doctests_pass(self, modname):
        mod = importlib.import_module(modname)
        results = doctest.testmod(mod, verbose=False)
        assert results.failed == 0, f"{results.failed} doctest failures in {modname}"
