"""Tests for interval-partitioned parallel instances (Sec. III.D)."""

import numpy as np
import pytest

from repro import GTConfig, StingerConfig
from repro.core.parallel import (
    PartitionedGraphTinker,
    PartitionedStinger,
    PartitionedStore,
)
from repro.errors import ConfigError
from tests.reference import ReferenceGraph


@pytest.fixture
def cfg():
    return GTConfig(pagewidth=16, subblock=4, workblock=2)


class TestPartitioning:
    def test_partition_batch_covers_everything(self, cfg, random_edges):
        store = PartitionedGraphTinker(4, cfg)
        parts = store.partition_batch(random_edges)
        assert sum(p.shape[0] for p in parts) == random_edges.shape[0]

    def test_partition_is_by_source(self, cfg, random_edges):
        """All edges of one source land in one partition (no cross-talk)."""
        store = PartitionedGraphTinker(4, cfg)
        parts = store.partition_batch(random_edges)
        seen: dict[int, int] = {}
        for pid, part in enumerate(parts):
            for s in np.unique(part[:, 0]).tolist():
                assert seen.setdefault(s, pid) == pid

    def test_partition_preserves_stream_order(self, cfg):
        store = PartitionedGraphTinker(2, cfg)
        edges = np.array([[0, 1], [0, 2], [0, 3]])
        parts = store.partition_batch(edges)
        nonempty = [p for p in parts if p.shape[0]]
        assert len(nonempty) == 1
        assert nonempty[0][:, 1].tolist() == [1, 2, 3]

    def test_rejects_bad_partition_count(self, cfg):
        with pytest.raises(ConfigError):
            PartitionedGraphTinker(0, cfg)


class TestSemantics:
    @pytest.mark.parametrize("nparts", [1, 2, 4, 8])
    def test_content_independent_of_partition_count(self, cfg, random_edges, nparts):
        store = PartitionedGraphTinker(nparts, cfg)
        store.insert_batch(random_edges)
        ref = ReferenceGraph()
        for s, d in random_edges.tolist():
            ref.insert_edge(s, d)
        assert store.n_edges == ref.n_edges
        for s, d in random_edges[:200].tolist():
            assert store.has_edge(s, d)
        for s in np.unique(random_edges[:100, 0]).tolist():
            assert store.degree(s) == ref.degree(s)
        store.check_invariants()

    def test_delete_batch(self, cfg, random_edges):
        store = PartitionedGraphTinker(3, cfg)
        store.insert_batch(random_edges)
        before = store.n_edges
        store.delete_batch(random_edges[:100])
        distinct = len({(s, d) for s, d in random_edges[:100].tolist()})
        assert store.n_edges == before - distinct

    def test_vertices_sum_is_duplicate_free(self, cfg, random_edges):
        store = PartitionedGraphTinker(4, cfg)
        store.insert_batch(random_edges)
        assert store.n_vertices == np.unique(random_edges[:, 0]).shape[0]


class TestMeasurement:
    def test_insert_batch_returns_per_partition_deltas(self, cfg, random_edges):
        store = PartitionedGraphTinker(4, cfg)
        deltas = store.insert_batch(random_edges)
        assert len(deltas) == 4
        assert sum(d.edges_inserted for d in deltas) == store.n_edges

    def test_merged_stats(self, cfg, random_edges):
        store = PartitionedGraphTinker(2, cfg)
        store.insert_batch(random_edges)
        merged = store.merged_stats()
        assert merged.edges_inserted == store.n_edges

    def test_more_partitions_smaller_makespan(self, cfg, random_edges):
        """The Fig. 10 mechanism: per-partition max cost falls with cores."""
        from repro.bench.costmodel import DEFAULT_COST_MODEL as M

        makespans = {}
        for nparts in (1, 8):
            store = PartitionedGraphTinker(nparts, cfg)
            deltas = store.insert_batch(random_edges)
            makespans[nparts] = max(M.cost(d) for d in deltas)
        assert makespans[8] < makespans[1]


class TestPartitionSeeds:
    """The interval hash is explicitly seedable; the seed moves vertices
    between partitions but never changes the logical graph."""

    @pytest.mark.parametrize("seed", [0, 11, 0xDEAD])
    def test_seed_is_deterministic(self, cfg, random_edges, seed):
        a = PartitionedGraphTinker(4, cfg, seed=seed)
        b = PartitionedGraphTinker(4, cfg, seed=seed)
        pa = a.partition_batch(random_edges)
        pb = b.partition_batch(random_edges)
        for x, y in zip(pa, pb):
            assert np.array_equal(x, y)

    def test_different_seeds_same_logical_graph(self, cfg, random_edges):
        stores = [PartitionedGraphTinker(4, cfg, seed=s) for s in (0, 11)]
        for store in stores:
            store.insert_batch(random_edges)
        a, b = stores
        assert a.n_edges == b.n_edges
        for s, d in random_edges[:200].tolist():
            assert a.has_edge(s, d) and b.has_edge(s, d)
        # ...but the placement genuinely differs between the two seeds
        sizes = [
            tuple(p.shape[0] for p in store.partition_batch(random_edges))
            for store in stores
        ]
        assert sizes[0] != sizes[1]


class TestThreadedEquivalence:
    """``max_workers`` must be pure mechanism: per-partition deltas,
    merged stats, and every instance's contents are identical between
    the serial and ThreadPoolExecutor paths."""

    def test_rejects_bad_max_workers(self, cfg):
        with pytest.raises(ConfigError):
            PartitionedGraphTinker(2, cfg, max_workers=0)

    @pytest.mark.parametrize("seed", [0, 97])
    @pytest.mark.parametrize("max_workers", [2, 4, 8])
    def test_threaded_matches_serial(self, cfg, random_edges, seed, max_workers):
        serial = PartitionedGraphTinker(4, cfg, seed=seed)
        threaded = PartitionedGraphTinker(4, cfg, seed=seed,
                                          max_workers=max_workers)
        for op, batch in (("insert_batch", random_edges),
                          ("delete_batch", random_edges[:500]),
                          ("insert_batch", random_edges[:800])):
            d_serial = getattr(serial, op)(batch)
            d_threaded = getattr(threaded, op)(batch)
            assert ([d.as_dict() for d in d_serial]
                    == [d.as_dict() for d in d_threaded]), op
        assert serial.n_edges == threaded.n_edges
        assert serial.merged_stats().as_dict() == threaded.merged_stats().as_dict()
        for inst_s, inst_t in zip(serial.instances, threaded.instances):
            s1, d1, w1 = inst_s.edge_arrays()
            s2, d2, w2 = inst_t.edge_arrays()
            assert (sorted(zip(s1.tolist(), d1.tolist(), w1.tolist()))
                    == sorted(zip(s2.tolist(), d2.tolist(), w2.tolist())))
        threaded.check_invariants()

    def test_threaded_stinger(self, random_edges):
        serial = PartitionedStinger(3, StingerConfig(edgeblock_size=4))
        threaded = PartitionedStinger(3, StingerConfig(edgeblock_size=4),
                                      max_workers=3)
        serial.insert_batch(random_edges)
        threaded.insert_batch(random_edges)
        assert serial.n_edges == threaded.n_edges
        assert serial.merged_stats().as_dict() == threaded.merged_stats().as_dict()


class TestPartitionedMachine:
    """Stateful property test: the partitioned store behaves like one
    logical graph regardless of partition count."""

    def test_machine(self):
        from hypothesis import settings
        from hypothesis import strategies as st
        from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

        from tests.reference import ReferenceGraph

        cfg = GTConfig(pagewidth=16, subblock=4, workblock=2)

        class Machine(RuleBasedStateMachine):
            def __init__(self):
                super().__init__()
                self.store = PartitionedGraphTinker(3, cfg)
                self.ref = ReferenceGraph()

            @rule(batch=st.lists(
                st.tuples(st.integers(0, 15), st.integers(0, 40)),
                min_size=1, max_size=20))
            def insert_batch(self, batch):
                edges = np.asarray(batch, dtype=np.int64)
                self.store.insert_batch(edges)
                for s, d in batch:
                    self.ref.insert_edge(s, d)

            @rule(batch=st.lists(
                st.tuples(st.integers(0, 15), st.integers(0, 40)),
                min_size=1, max_size=10))
            def delete_batch(self, batch):
                edges = np.asarray(batch, dtype=np.int64)
                self.store.delete_batch(edges)
                for s, d in batch:
                    self.ref.delete_edge(s, d)

            @rule(src=st.integers(0, 15), dst=st.integers(0, 40))
            def query(self, src, dst):
                assert self.store.has_edge(src, dst) == self.ref.has_edge(src, dst)

            @invariant()
            def counts(self):
                assert self.store.n_edges == self.ref.n_edges

            def teardown(self):
                self.store.check_invariants()

        Machine.TestCase.settings = settings(
            max_examples=25, stateful_step_count=40, deadline=None
        )
        state = Machine.TestCase()
        state.runTest()


class TestPartitionedStinger:
    def test_basic(self, random_edges):
        store = PartitionedStinger(4, StingerConfig(edgeblock_size=4))
        store.insert_batch(random_edges)
        distinct = len({(s, d) for s, d in random_edges.tolist()})
        assert store.n_edges == distinct
        store.check_invariants()
