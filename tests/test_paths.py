"""Tests for path reconstruction from converged property vectors."""

import networkx as nx
import numpy as np
import pytest

from repro import GraphTinker, GTConfig
from repro.engine import BFS, SSSP, HybridEngine
from repro.engine.paths import path_cost, predecessor_map, reconstruct_path
from repro.errors import EngineError
from repro.workloads import rmat_edges


def solved(program, edges, weights, root):
    store = GraphTinker(GTConfig(pagewidth=16, subblock=4, workblock=2))
    store.insert_batch(edges, weights)
    engine = HybridEngine(store, program, policy="hybrid")
    engine.reset(roots=[root])
    engine.compute()
    return store, engine


@pytest.fixture(scope="module")
def graph():
    edges = rmat_edges(9, 2000, seed=5)
    edges = edges[edges[:, 0] != edges[:, 1]]
    weights = np.random.default_rng(9).uniform(0.5, 3.0, edges.shape[0])
    return edges, weights


class TestPredecessorMap:
    def test_witness_condition(self):
        # 0 ->(1) 1 ->(1) 2, plus a worse direct 0 ->(5) 2
        edges = np.array([[0, 1], [1, 2], [0, 2]])
        weights = np.array([1.0, 1.0, 5.0])
        values = np.array([0.0, 1.0, 2.0])
        parents = predecessor_map(edges[:, 0], edges[:, 1], weights, values)
        assert parents == {1: 0, 2: 1}  # the direct edge is not a witness

    def test_unit_cost_mode(self):
        edges = np.array([[0, 1], [1, 2]])
        weights = np.array([9.0, 9.0])  # ignored under unit cost
        values = np.array([0.0, 1.0, 2.0])
        parents = predecessor_map(edges[:, 0], edges[:, 1], weights, values,
                                  unit_cost=True)
        assert parents == {1: 0, 2: 1}

    def test_empty_edges(self):
        e = np.empty(0, dtype=np.int64)
        assert predecessor_map(e, e, e.astype(float), np.zeros(3)) == {}


class TestReconstruction:
    def test_bfs_path_is_shortest_by_hops(self, graph):
        edges, _ = graph
        root = int(edges[0, 0])
        store, engine = solved(BFS(), edges, None, root)
        G = nx.DiGraph()
        G.add_edges_from(edges.tolist())
        levels = nx.single_source_shortest_path_length(G, root)
        # check a spread of reachable targets
        targets = sorted(levels, key=levels.get)[-10:]
        for target in targets:
            path = reconstruct_path(store, engine.values, root, target,
                                    unit_cost=True)
            assert path[0] == root and path[-1] == target
            assert len(path) - 1 == levels[target]
            for u, v in zip(path, path[1:]):
                assert store.has_edge(u, v)

    def test_sssp_path_cost_matches_distance(self, graph):
        edges, weights = graph
        # de-dup weights so distances are well-defined (last weight wins)
        root = int(edges[0, 0])
        store, engine = solved(SSSP(), edges, weights, root)
        reached = np.flatnonzero(np.isfinite(engine.values))
        rng = np.random.default_rng(0)
        for target in rng.choice(reached, size=min(10, reached.size), replace=False).tolist():
            path = reconstruct_path(store, engine.values, root, int(target))
            assert path[0] == root and path[-1] == target
            assert path_cost(store, path) == pytest.approx(engine.value_of(int(target)))

    def test_root_path(self, graph):
        edges, _ = graph
        root = int(edges[0, 0])
        store, engine = solved(BFS(), edges, None, root)
        assert reconstruct_path(store, engine.values, root, root) == [root]

    def test_unreached_target_raises(self, graph):
        edges, _ = graph
        root = int(edges[0, 0])
        store, engine = solved(BFS(), edges, None, root)
        unreached = [v for v in range(engine.values.shape[0])
                     if not np.isfinite(engine.value_of(v))]
        if unreached:
            with pytest.raises(EngineError):
                reconstruct_path(store, engine.values, root, unreached[0])

    def test_stale_values_detected(self, graph):
        edges, _ = graph
        root = int(edges[0, 0])
        store, engine = solved(BFS(), edges, None, root)
        # find a target whose witness edges can all be severed
        values = engine.values.copy()
        target = int(np.flatnonzero(np.isfinite(values) & (values >= 2))[0])
        # delete every in-edge of the target, making values stale
        doomed = edges[edges[:, 1] == target]
        store.delete_batch(doomed)
        with pytest.raises(EngineError):
            reconstruct_path(store, values, root, target, unit_cost=True)


class TestPathCost:
    def test_missing_edge_rejected(self, graph):
        edges, _ = graph
        store, _ = solved(BFS(), edges, None, int(edges[0, 0]))
        with pytest.raises(EngineError):
            path_cost(store, [999998, 999999])
