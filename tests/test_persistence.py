"""Tests for snapshot save/restore."""

import numpy as np
import pytest

from repro import GraphTinker, GTConfig, StingerConfig
from repro.errors import WorkloadError
from repro.stinger import Stinger
from repro.workloads import rmat_edges
from repro.workloads.persistence import (
    load_snapshot,
    read_snapshot,
    restore_graphtinker,
    save_snapshot,
)


@pytest.fixture
def populated(rng):
    gt = GraphTinker(GTConfig(pagewidth=16, subblock=4, workblock=2))
    edges = rmat_edges(9, 3000, seed=4)
    edges = edges[edges[:, 0] != edges[:, 1]]
    gt.insert_batch(edges, rng.uniform(0.5, 2.0, edges.shape[0]))
    gt.delete_batch(edges[::5])
    return gt


class TestRoundtrip:
    def test_restore_preserves_graph(self, populated, tmp_path):
        path = tmp_path / "snap.npz"
        n = save_snapshot(populated, path)
        assert n == populated.n_edges
        restored = restore_graphtinker(path)
        assert restored.n_edges == populated.n_edges
        assert sorted(restored.edges()) == sorted(populated.edges())
        restored.check_invariants()

    def test_restore_into_different_config(self, populated, tmp_path):
        path = tmp_path / "snap.npz"
        save_snapshot(populated, path)
        restored = restore_graphtinker(
            path, GTConfig(pagewidth=32, compact_on_delete=True)
        )
        assert sorted(restored.edges()) == sorted(populated.edges())
        restored.check_invariants()

    def test_stinger_snapshot_into_graphtinker(self, tmp_path, rng):
        st = Stinger(StingerConfig(edgeblock_size=4))
        edges = np.column_stack([rng.integers(0, 30, 500), rng.integers(0, 90, 500)])
        st.insert_batch(edges)
        path = tmp_path / "snap.npz"
        save_snapshot(st, path)
        gt = restore_graphtinker(path)
        assert sorted(gt.edges()) == sorted(st.edges())

    def test_empty_store(self, tmp_path):
        gt = GraphTinker(GTConfig(pagewidth=16, subblock=4, workblock=2))
        path = tmp_path / "snap.npz"
        assert save_snapshot(gt, path) == 0
        edges, weights = load_snapshot(path)
        assert edges.shape == (0, 2)
        assert weights.shape == (0,)
        restored = restore_graphtinker(path)
        assert restored.n_edges == 0
        restored.check_invariants()


class TestFormatV2:
    def test_writes_v2_with_writer_config(self, populated, tmp_path):
        path = tmp_path / "snap.npz"
        save_snapshot(populated, path)
        snap = read_snapshot(path)
        assert snap.version == 2
        assert snap.writer_config == populated.config
        assert snap.repro_version
        assert snap.meta is None

    def test_meta_roundtrip(self, populated, tmp_path):
        path = tmp_path / "snap.npz"
        save_snapshot(populated, path, meta={"last_seq": 17, "note": "x"})
        snap = read_snapshot(path)
        assert snap.meta == {"last_seq": 17, "note": "x"}

    def test_restore_with_writer_config(self, populated, tmp_path):
        path = tmp_path / "snap.npz"
        save_snapshot(populated, path)
        restored = restore_graphtinker(path, use_writer_config=True)
        assert restored.config == populated.config
        # Default behaviour is unchanged: receiving-store semantics.
        assert restore_graphtinker(path).config == GTConfig()

    def test_stinger_config_embedded(self, tmp_path, rng):
        st = Stinger(StingerConfig(edgeblock_size=4))
        st.insert_batch(np.array([[1, 2], [3, 4]]))
        path = tmp_path / "snap.npz"
        save_snapshot(st, path)
        snap = read_snapshot(path)
        assert snap.writer_config == StingerConfig(edgeblock_size=4)

    def test_reads_v1_snapshots(self, tmp_path):
        path = tmp_path / "v1.npz"
        np.savez_compressed(
            path,
            format=np.array("repro-graph-snapshot-v1"),
            src=np.array([1, 2], dtype=np.int64),
            dst=np.array([3, 4], dtype=np.int64),
            weight=np.array([1.0, 2.5]),
        )
        snap = read_snapshot(path)
        assert snap.version == 1
        assert snap.writer_config is None and snap.repro_version is None
        gt = restore_graphtinker(path)
        assert sorted(gt.edges()) == [(1, 3, 1.0), (2, 4, 2.5)]

    def test_unknown_format_raises_actionably(self, tmp_path):
        path = tmp_path / "v9.npz"
        np.savez(path, format=np.array("repro-graph-snapshot-v9"),
                 src=np.empty(0, np.int64), dst=np.empty(0, np.int64),
                 weight=np.empty(0))
        with pytest.raises(WorkloadError, match="unknown snapshot format"):
            load_snapshot(path)


class TestValidation:
    def test_rejects_foreign_npz(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, a=np.arange(3))
        with pytest.raises(WorkloadError):
            load_snapshot(path)

    def test_load_returns_edges_and_weights(self, populated, tmp_path):
        path = tmp_path / "snap.npz"
        save_snapshot(populated, path)
        edges, weights = load_snapshot(path)
        assert edges.shape[0] == weights.shape[0] == populated.n_edges
        assert edges.shape[1] == 2

    def test_length_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, format=np.array("repro-graph-snapshot-v1"),
                 src=np.array([1, 2], np.int64), dst=np.array([3, 4], np.int64),
                 weight=np.array([1.0]))
        with pytest.raises(WorkloadError, match="length mismatch"):
            load_snapshot(path)
