"""Tests for snapshot save/restore."""

import numpy as np
import pytest

from repro import GraphTinker, GTConfig, StingerConfig
from repro.errors import WorkloadError
from repro.stinger import Stinger
from repro.workloads import rmat_edges
from repro.workloads.persistence import (
    load_snapshot,
    restore_graphtinker,
    save_snapshot,
)


@pytest.fixture
def populated(rng):
    gt = GraphTinker(GTConfig(pagewidth=16, subblock=4, workblock=2))
    edges = rmat_edges(9, 3000, seed=4)
    edges = edges[edges[:, 0] != edges[:, 1]]
    gt.insert_batch(edges, rng.uniform(0.5, 2.0, edges.shape[0]))
    gt.delete_batch(edges[::5])
    return gt


class TestRoundtrip:
    def test_restore_preserves_graph(self, populated, tmp_path):
        path = tmp_path / "snap.npz"
        n = save_snapshot(populated, path)
        assert n == populated.n_edges
        restored = restore_graphtinker(path)
        assert restored.n_edges == populated.n_edges
        assert sorted(restored.edges()) == sorted(populated.edges())
        restored.check_invariants()

    def test_restore_into_different_config(self, populated, tmp_path):
        path = tmp_path / "snap.npz"
        save_snapshot(populated, path)
        restored = restore_graphtinker(
            path, GTConfig(pagewidth=32, compact_on_delete=True)
        )
        assert sorted(restored.edges()) == sorted(populated.edges())
        restored.check_invariants()

    def test_stinger_snapshot_into_graphtinker(self, tmp_path, rng):
        st = Stinger(StingerConfig(edgeblock_size=4))
        edges = np.column_stack([rng.integers(0, 30, 500), rng.integers(0, 90, 500)])
        st.insert_batch(edges)
        path = tmp_path / "snap.npz"
        save_snapshot(st, path)
        gt = restore_graphtinker(path)
        assert sorted(gt.edges()) == sorted(st.edges())

    def test_empty_store(self, tmp_path):
        gt = GraphTinker(GTConfig(pagewidth=16, subblock=4, workblock=2))
        path = tmp_path / "snap.npz"
        assert save_snapshot(gt, path) == 0
        restored = restore_graphtinker(path)
        assert restored.n_edges == 0


class TestValidation:
    def test_rejects_foreign_npz(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, a=np.arange(3))
        with pytest.raises(WorkloadError):
            load_snapshot(path)

    def test_load_returns_edges_and_weights(self, populated, tmp_path):
        path = tmp_path / "snap.npz"
        save_snapshot(populated, path)
        edges, weights = load_snapshot(path)
        assert edges.shape[0] == weights.shape[0] == populated.n_edges
        assert edges.shape[1] == 2
