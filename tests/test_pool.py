"""Unit + property tests for the BlockPool growable structured pool."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.pool import (
    EMPTY,
    EDGE_CELL_DTYPE,
    BlockPool,
    blank_edge_cells,
)


def make_pool(width=8, initial=2):
    return BlockPool(width, EDGE_CELL_DTYPE, blank_edge_cells, initial)


class TestBlankCells:
    def test_blank_state(self):
        arr = blank_edge_cells((3, 4))
        assert (arr["dst"] == EMPTY).all()
        assert (arr["cal_block"] == -1).all()
        assert (arr["cal_slot"] == -1).all()
        assert (arr["weight"] == 0).all()
        assert (arr["probe"] == 0).all()


class TestAllocation:
    def test_sequential_indices(self):
        pool = make_pool()
        assert [pool.allocate() for _ in range(5)] == [0, 1, 2, 3, 4]
        assert pool.n_used == 5

    def test_growth_doubles(self):
        pool = make_pool(initial=2)
        for _ in range(9):
            pool.allocate()
        assert pool.capacity >= 9
        assert pool.n_used == 9

    def test_growth_preserves_contents(self):
        pool = make_pool(initial=2)
        a = pool.allocate()
        pool.row(a)["dst"][3] = 77
        for _ in range(20):
            pool.allocate()
        assert pool.row(a)["dst"][3] == 77

    def test_free_and_reuse_is_blank(self):
        pool = make_pool()
        a = pool.allocate()
        pool.row(a)["dst"][:] = 9
        pool.free(a)
        b = pool.allocate()
        assert b == a  # LIFO reuse
        assert (pool.row(b)["dst"] == EMPTY).all()

    def test_free_unallocated_raises(self):
        pool = make_pool()
        with pytest.raises(IndexError):
            pool.free(0)

    def test_row_out_of_range_raises(self):
        pool = make_pool()
        with pytest.raises(IndexError):
            pool.row(0)

    def test_bad_params(self):
        with pytest.raises(ValueError):
            BlockPool(0, EDGE_CELL_DTYPE, blank_edge_cells)
        with pytest.raises(ValueError):
            BlockPool(4, EDGE_CELL_DTYPE, blank_edge_cells, initial_blocks=0)


class TestViews:
    def test_row_is_view(self):
        pool = make_pool()
        a = pool.allocate()
        pool.row(a)["dst"][0] = 5
        assert pool.row(a)["dst"][0] == 5

    def test_view_slice(self):
        pool = make_pool(width=8)
        a = pool.allocate()
        pool.view(a, 2, 6)["dst"][:] = 3
        row = pool.row(a)["dst"]
        assert (row[2:6] == 3).all()
        assert row[0] == EMPTY and row[6] == EMPTY

    def test_iter_used_skips_freed(self):
        pool = make_pool()
        ids = [pool.allocate() for _ in range(4)]
        pool.free(ids[1])
        assert list(pool.iter_used()) == [0, 2, 3]

    def test_len_counts_live_blocks(self):
        pool = make_pool()
        ids = [pool.allocate() for _ in range(4)]
        pool.free(ids[0])
        assert len(pool) == 3
        assert pool.high_water == 4


class TestBulkAccess:
    def test_allocate_many(self):
        pool = make_pool()
        ids = pool.allocate_many(5)
        assert ids == [0, 1, 2, 3, 4]

    def test_raw_covers_used_rows(self):
        pool = make_pool()
        a = pool.allocate()
        pool.allocate()
        pool.row(a)["dst"][0] = 42
        raw = pool.raw()
        assert raw.shape[0] == 2
        assert raw["dst"][a][0] == 42

    def test_raw_excludes_unused_capacity(self):
        pool = make_pool(initial=8)
        pool.allocate()
        assert pool.raw().shape[0] == 1


class TestEdgeLocation:
    def test_fields_and_tuple_behaviour(self):
        from repro.core.edgeblock_array import MAIN, OVERFLOW, EdgeLocation

        loc = EdgeLocation(OVERFLOW, 3, 17)
        assert loc.region == OVERFLOW
        assert loc.block == 3
        assert loc.slot == 17
        assert tuple(loc) == (OVERFLOW, 3, 17)
        assert loc == (OVERFLOW, 3, 17)  # tuple equality for test ergonomics


@given(st.lists(st.sampled_from(["alloc", "free"]), min_size=1, max_size=200))
def test_pool_alloc_free_fuzz(ops):
    """Allocation/free sequences never corrupt bookkeeping."""
    pool = make_pool()
    live: list[int] = []
    for op in ops:
        if op == "alloc" or not live:
            idx = pool.allocate()
            assert idx not in live
            live.append(idx)
        else:
            pool.free(live.pop())
        assert pool.n_used == len(live)
        assert pool.high_water >= pool.n_used
    assert sorted(pool.iter_used()) == sorted(live)
