"""Tests for the Inference-Box predictor variants (ratio vs degree)."""

import numpy as np
import pytest

from repro import EngineConfig, GraphTinker, GTConfig
from repro.bench.costmodel import DEFAULT_COST_MODEL
from repro.engine import BFS, HybridEngine
from repro.engine.modes import FULL, INCREMENTAL
from repro.errors import ConfigError
from repro.workloads import rmat_edges


def store_with(edges):
    gt = GraphTinker(GTConfig(pagewidth=16, subblock=4, workblock=2))
    gt.insert_batch(edges)
    return gt


class TestConfig:
    def test_default_is_ratio(self):
        assert EngineConfig().predictor == "ratio"

    def test_unknown_predictor_rejected(self):
        with pytest.raises(ConfigError):
            EngineConfig(predictor="magic")


class TestDegreePredictor:
    def test_degree_numerator_counts_frontier_edges(self):
        # vertex 0 has out-degree 5, vertex 1 has out-degree 1: E = 6.
        edges = np.array([[0, d] for d in range(1, 6)] + [[1, 9]])
        gt = store_with(edges)
        cfg = EngineConfig(predictor="degree", threshold=0.5)
        engine = HybridEngine(gt, BFS(), config=cfg)
        # active = {0}: D/E = 5/6 > 0.5 -> FP
        mode, t = engine.predict_mode(1, np.array([0]))
        assert (mode, t) == (FULL, pytest.approx(5 / 6))
        # active = {1}: D/E = 1/6 < 0.5 -> IP
        mode, t = engine.predict_mode(1, np.array([1]))
        assert (mode, t) == (INCREMENTAL, pytest.approx(1 / 6))

    def test_ratio_predictor_ignores_degrees(self):
        edges = np.array([[0, d] for d in range(1, 6)] + [[1, 9]])
        gt = store_with(edges)
        engine = HybridEngine(gt, BFS(), config=EngineConfig(threshold=0.5))
        m0, t0 = engine.predict_mode(1, np.array([0]))
        m1, t1 = engine.predict_mode(1, np.array([1]))
        assert t0 == t1  # same A, same T regardless of who is active

    def test_degree_predictor_unknown_vertices_count_zero(self):
        edges = np.array([[0, 1]])
        gt = store_with(edges)
        cfg = EngineConfig(predictor="degree", threshold=0.5)
        engine = HybridEngine(gt, BFS(), config=cfg)
        mode, t = engine.predict_mode(1, np.array([999]))  # sink/unseen
        assert mode == INCREMENTAL and t == 0.0

    def test_results_identical_across_predictors(self):
        """Predictor choice affects cost, never results."""
        edges = rmat_edges(9, 2500, seed=17)
        edges = edges[edges[:, 0] != edges[:, 1]]
        root = int(edges[0, 0])
        values = {}
        for pred in ("ratio", "degree"):
            gt = store_with(edges)
            threshold = (
                DEFAULT_COST_MODEL.hybrid_threshold(16)
                if pred == "ratio"
                else DEFAULT_COST_MODEL.hybrid_threshold_degree(
                    edges.shape[0] / np.unique(edges[:, 0]).shape[0], 16
                )
            )
            engine = HybridEngine(
                gt, BFS(), config=EngineConfig(predictor=pred, threshold=threshold)
            )
            engine.reset(roots=[root])
            engine.compute()
            values[pred] = engine.values
        n = min(v.shape[0] for v in values.values())
        assert (values["ratio"][:n] == values["degree"][:n]).all()


class TestCalibration:
    def test_degree_threshold_scales_with_degree(self):
        t_ratio = DEFAULT_COST_MODEL.hybrid_threshold(64)
        t_degree = DEFAULT_COST_MODEL.hybrid_threshold_degree(16.0, 64)
        assert t_degree == pytest.approx(16.0 * t_ratio)

    def test_threshold_falls_with_pagewidth(self):
        """Wider blocks make IP gathers dearer -> lower break-even."""
        assert (DEFAULT_COST_MODEL.hybrid_threshold(256)
                < DEFAULT_COST_MODEL.hybrid_threshold(16))
