"""Tests for probe-distance measurement (the O(log n) vs O(n) claim)."""

import numpy as np
import pytest

from repro import GraphTinker, GTConfig, StingerConfig
from repro.core.probes import (
    ProbeSummary,
    degree_vs_probe_curve,
    graphtinker_probe_summary,
    stinger_probe_summary,
)
from repro.stinger import Stinger


@pytest.fixture
def loaded_pair(rng):
    """Both stores loaded with the same hub-heavy stream."""
    src = rng.choice([0] * 6 + list(range(1, 30)), 4000)
    dst = rng.integers(0, 3000, 4000)
    edges = np.column_stack([src, dst]).astype(np.int64)
    gt = GraphTinker(GTConfig(pagewidth=16, subblock=4, workblock=2))
    st = Stinger(StingerConfig(edgeblock_size=4))
    gt.insert_batch(edges)
    st.insert_batch(edges)
    return gt, st


class TestProbeSummary:
    def test_empty(self):
        s = ProbeSummary.from_samples(np.empty(0))
        assert s.count == 0 and s.mean == 0.0

    def test_statistics(self):
        s = ProbeSummary.from_samples(np.array([1.0, 2.0, 3.0, 10.0]))
        assert s.count == 4
        assert s.mean == 4.0
        assert s.max == 10.0
        assert 3.0 <= s.p95 <= 10.0


class TestMeasurement:
    def test_empty_stores(self):
        gt = GraphTinker(GTConfig(pagewidth=16, subblock=4, workblock=2))
        assert graphtinker_probe_summary(gt).count == 0
        st = Stinger(StingerConfig())
        assert stinger_probe_summary(st).count == 0

    def test_measurement_is_side_effect_free(self, loaded_pair):
        gt, st = loaded_pair
        before_gt = gt.stats.as_dict()
        before_st = st.stats.as_dict()
        graphtinker_probe_summary(gt, sample_vertices=16)
        stinger_probe_summary(st, sample_vertices=16)
        assert gt.stats.as_dict() == before_gt
        assert st.stats.as_dict() == before_st

    def test_graphtinker_probes_sublinear_vs_stinger(self, loaded_pair):
        """The paper's core claim on a hub vertex: GT's probe cost grows
        like log(degree), STINGER's like degree."""
        gt, st = loaded_pair
        gt_summary = graphtinker_probe_summary(gt, sample_vertices=1000)
        st_summary = stinger_probe_summary(st, sample_vertices=1000)
        assert gt_summary.max < st_summary.max
        assert gt_summary.mean < st_summary.mean

    def test_degree_vs_probe_curve_monotone_but_sublinear(self, loaded_pair):
        gt, _ = loaded_pair
        curve = degree_vs_probe_curve(gt)
        assert len(curve) >= 2
        degrees = [c[0] for c in curve]
        probes = [c[1] for c in curve]
        # probe grows with degree but much slower than linearly:
        # the biggest-degree bucket has >> 16x the degree of the smallest
        # but its mean probe must be far below 16x.
        finite = [(d, p) for d, p in zip(degrees, probes) if np.isfinite(d)]
        if len(finite) >= 2:
            (d0, p0), (d1, p1) = finite[0], finite[-1]
            assert p1 / p0 < (d1 / d0) ** 0.75
