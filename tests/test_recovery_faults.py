"""Fault-injection tests: randomized writer kills must never lose a
durable batch or invent an undurable one.

The harness mirrors a real deployment loop: a writer streams batches
through :class:`GraphService` (waiting on each ticket, so every
completed batch is WAL-durable), dies at a randomized WAL byte offset,
is recovered, and then finishes the remaining input.  The final edge set
must be bit-identical to an uncrashed run of the same stream.
"""

import numpy as np
import pytest

import repro.obs as obs
from repro.core.graphtinker import GraphTinker
from repro.errors import ReproError, ServiceError
from repro.service import (
    CheckpointManager,
    FaultInjector,
    GraphService,
    SimulatedCrash,
    WriteAheadLog,
    list_segments,
    recover,
)
from repro.service.wal import OP_INSERT
from repro.workloads import rmat_edges

BATCH = 150
N_EDGES = 2400


@pytest.fixture
def edges():
    return rmat_edges(8, N_EDGES, seed=11)


def edge_set(store):
    src, dst, _ = store.analytics_edges()
    return set(zip(src.tolist(), dst.tolist()))


def reference_set(edges):
    ref = GraphTinker()
    ref.insert_batch(edges)
    return edge_set(ref)


def run_until_crash(directory, edges, kill_at, checkpoint_every=0):
    """Stream batches (ticket-synchronous) until the injected kill fires."""
    service, rec = GraphService.open(
        directory, flush_interval=0.002, checkpoint_every=checkpoint_every,
        injector=FaultInjector(kill_at))
    offset = rec.cum_edges
    try:
        for start in range(offset, edges.shape[0], BATCH):
            service.submit_insert(edges[start:start + BATCH]).wait(30)
    except ReproError:
        # Either the ticket re-raised the SimulatedCrash itself or a
        # later submit saw the stopped flusher (ServiceError).
        assert isinstance(service.fatal_error, SimulatedCrash)
        service.close()
        return True
    service.close()
    return False


def finish_stream(directory, edges):
    service, rec = GraphService.open(directory, flush_interval=0.002)
    with service:
        for start in range(rec.cum_edges, edges.shape[0], BATCH):
            service.submit_insert(edges[start:start + BATCH]).wait(30)
        return edge_set(service)


class TestRandomizedKills:
    @pytest.mark.parametrize("kill_seed", range(6))
    def test_kill_recover_resume_matches_uncrashed(self, tmp_path, edges,
                                                   kill_seed):
        rng = np.random.default_rng(kill_seed)
        # Offsets across the whole plausible log (~40 bytes/edge).
        kill_at = int(rng.integers(10, N_EDGES * 40))
        crashed = run_until_crash(tmp_path, edges, kill_at)
        registry = obs.MetricsRegistry()
        prior = obs.set_registry(registry)
        try:
            with obs.enabled_scope(True):
                result = recover(tmp_path)
        finally:
            obs.set_registry(prior)
        # Recovery never replays at or before the checkpoint cursor.
        assert all(s > result.checkpoint_seq for s in result.replayed_seqs)
        assert registry.gauge("service.recovery.checkpoint_seq").value \
            == result.checkpoint_seq
        assert registry.counter("service.recovery.replayed_records").value \
            == result.replayed_records
        # Durable prefix is batch-aligned: ticket-synchronous submission
        # means cum_edges counts whole completed batches.
        assert result.cum_edges % BATCH == 0
        assert edge_set(result.store) == reference_set(edges[:result.cum_edges])
        # Finish the stream: final state identical to an uncrashed run.
        final = finish_stream(tmp_path, edges)
        assert final == reference_set(edges)
        if not crashed:
            assert result.cum_edges == N_EDGES

    def test_kill_with_checkpoints_replays_only_tail(self, tmp_path, edges):
        crashed = run_until_crash(tmp_path, edges, kill_at=30_000,
                                  checkpoint_every=3)
        assert crashed
        registry = obs.MetricsRegistry()
        prior = obs.set_registry(registry)
        try:
            with obs.enabled_scope(True):
                result = recover(tmp_path)
        finally:
            obs.set_registry(prior)
        assert result.checkpoint_seq > 0
        assert all(s > result.checkpoint_seq for s in result.replayed_seqs)
        assert registry.gauge("service.recovery.last_seq").value \
            == result.last_seq
        assert finish_stream(tmp_path, edges) == reference_set(edges)


class TestRecoveryProtocol:
    def test_no_checkpoint_no_wal(self, tmp_path):
        result = recover(tmp_path)
        assert result.store.n_edges == 0
        assert result.last_seq == 0 and result.checkpoint_seq == 0

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(ServiceError, match="no such service directory"):
            recover(tmp_path / "nope")

    def test_wal_only_no_checkpoint(self, tmp_path, edges):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(OP_INSERT, edges[:500])
            wal.append(OP_INSERT, edges[500:900])
        result = recover(tmp_path)
        assert result.checkpoint_seq == 0
        assert result.replayed_records == 2
        assert edge_set(result.store) == reference_set(edges[:900])

    def test_double_recovery_is_idempotent(self, tmp_path, edges):
        run_until_crash(tmp_path, edges, kill_at=25_000)
        first = recover(tmp_path)
        second = recover(tmp_path)
        assert edge_set(first.store) == edge_set(second.store)
        assert (first.last_seq, first.cum_edges) \
            == (second.last_seq, second.cum_edges)
        # The first pass truncated the torn tail; the second sees none.
        assert second.torn_offset is None

    def test_checkpoint_wal_gap_raises(self, tmp_path, edges):
        # One record per segment, then lose the one right after the
        # checkpoint cursor: recovery must refuse, not silently diverge.
        store = GraphTinker()
        with WriteAheadLog(tmp_path, segment_bytes=64) as wal:
            for k in range(3):
                batch = edges[k * 100:(k + 1) * 100]
                wal.append(OP_INSERT, batch)
                store.insert_batch(batch)
                if k == 0:
                    CheckpointManager(tmp_path).write(store, 1, 100)
        segments = list_segments(tmp_path)
        segments[1].unlink()  # drop sequence 2 (first post-checkpoint record)
        with pytest.raises(ServiceError, match="gap"):
            recover(tmp_path)

    def test_recover_after_clean_shutdown_checkpoint(self, tmp_path, edges):
        service, _ = GraphService.open(tmp_path, flush_interval=0.002)
        service.submit_insert(edges[:800]).wait(30)
        service.close(checkpoint=True)
        result = recover(tmp_path)
        assert result.replayed_records == 0  # checkpoint covers everything
        assert edge_set(result.store) == reference_set(edges[:800])
