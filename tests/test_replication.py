"""Tests for WAL-shipping replication: apply, recovery, wire ops, failover.

Three layers, bottom-up:

* :class:`~repro.net.replication.ReplicaService` applying shipped
  records to its own durable WAL + store (idempotence, gap detection,
  cursor parity, crash recovery) — no network involved.
* The writer-side replication ops (``subscribe`` / ``wal_batch`` /
  ``replica_status`` / ``resync``) over a real socket.
* The composed :class:`~repro.net.replication.ReplicaServer` and the
  client-side :class:`~repro.net.client.ReplicaSet` (read-your-writes
  floors, failover, staleness metadata).

The convergence oracle throughout is
:func:`~repro.net.protocol.store_digest` — an order-insensitive hash of
the full edge multiset, so "replica equals writer" is exact, not
sampled.  Fault-schedule variants live in ``test_replication_chaos.py``.
"""

import numpy as np
import pytest

from repro.errors import (
    NotWriterError,
    ReplicationError,
    StaleReadError,
    WorkloadError,
)
from repro.net.client import GraphClient, ReplicaSet
from repro.net.protocol import store_digest
from repro.net.replication import ReplicaServer, ReplicaService
from repro.net.server import ServerThread
from repro.service import GraphService
from repro.service.wal import OP_DELETE, OP_INSERT, WalRecord


def make_records(n: int, start_seq: int = 1, edges_per: int = 2):
    """``n`` consecutive insert records with the right cum_edges chain."""
    out = []
    cum = (start_seq - 1) * edges_per
    for i in range(n):
        seq = start_seq + i
        edges = np.array([[seq * 10 + j, seq * 10 + j + 1]
                          for j in range(edges_per)], dtype=np.int64)
        cum += edges_per
        out.append(WalRecord(seq=seq, op=OP_INSERT, edges=edges,
                             weights=np.ones(edges_per), cum_edges=cum))
    return out


def writer_digest(service):
    with service._store_lock:
        return store_digest(service._store)


def replica_digest(replica_service):
    with replica_service._store_lock:
        return store_digest(replica_service._store)


class TestReplicaServiceApply:
    def test_apply_in_order(self, tmp_path):
        rep = ReplicaService(tmp_path)
        for record in make_records(5):
            assert rep.apply_record(record) is True
        assert rep.applied_seq == 5
        assert rep.cum_input_edges == 10
        assert rep._store.n_edges == 10
        rep.close()

    def test_reapply_is_idempotent_skip(self, tmp_path):
        rep = ReplicaService(tmp_path)
        records = make_records(3)
        for record in records:
            rep.apply_record(record)
        assert rep.apply_record(records[1]) is False  # already applied
        assert rep.applied_seq == 3
        assert rep._store.n_edges == 6  # nothing double-applied
        rep.close()

    def test_sequence_gap_is_typed_error(self, tmp_path):
        rep = ReplicaService(tmp_path)
        r1, _, r3 = make_records(3)
        rep.apply_record(r1)
        with pytest.raises(ReplicationError):
            rep.apply_record(r3)
        rep.close()

    def test_cum_edges_parity_mismatch_is_typed_error(self, tmp_path):
        rep = ReplicaService(tmp_path)
        (record,) = make_records(1)
        bad = WalRecord(seq=record.seq, op=record.op, edges=record.edges,
                        weights=record.weights,
                        cum_edges=record.cum_edges + 7)
        with pytest.raises(ReplicationError):
            rep.apply_record(bad)
        rep.close()

    def test_mutations_refused_with_not_writer(self, tmp_path):
        rep = ReplicaService(tmp_path)
        with pytest.raises(NotWriterError):
            rep.submit_insert(np.array([[1, 2]], dtype=np.int64))
        with pytest.raises(NotWriterError):
            rep.submit_delete(np.array([[1, 2]], dtype=np.int64))
        rep.close()

    def test_deletes_replicate(self, tmp_path):
        rep = ReplicaService(tmp_path)
        edges = np.array([[1, 2], [3, 4]], dtype=np.int64)
        rep.apply_record(WalRecord(seq=1, op=OP_INSERT, edges=edges,
                                   weights=np.ones(2), cum_edges=2))
        rep.apply_record(WalRecord(seq=2, op=OP_DELETE,
                                   edges=edges[:1], weights=np.ones(1),
                                   cum_edges=3))
        assert rep._store.n_edges == 1
        rep.close()

    def test_abandoned_replica_recovers_exact_state(self, tmp_path):
        """kill -9 equivalent: drop the service without close(); the
        local WAL alone must reproduce the state and the cursor."""
        rep = ReplicaService(tmp_path)
        for record in make_records(7):
            rep.apply_record(record)
        digest = replica_digest(rep)["sha256"]
        # no close(): the WAL flushes every append, so this is a crash
        rep2 = ReplicaService(tmp_path)
        assert rep2.applied_seq == 7
        assert rep2.cum_input_edges == 14
        assert replica_digest(rep2)["sha256"] == digest
        rep2.close()

    def test_stale_shed_over_lag_budget(self, tmp_path):
        rep = ReplicaService(tmp_path, max_lag_seq=3)
        for record in make_records(2):
            rep.apply_record(record)
        rep.known_upstream_seq = rep.applied_seq + 4  # over budget
        with pytest.raises(StaleReadError):
            rep._shed_check()
        assert rep.health()["shedding_reads"] is True
        assert rep.read_staleness()["lag_seq"] == 4
        rep.known_upstream_seq = rep.applied_seq + 3  # at budget: fine
        rep._shed_check()
        rep.close()


@pytest.fixture
def writer(tmp_path):
    svc = GraphService(tmp_path / "writer", batch_edges=512,
                       flush_interval=0.005)
    yield svc
    svc.close()


@pytest.fixture
def writer_server(writer):
    with ServerThread(writer, view_refresh_s=0.0) as thread:
        yield thread


def insert(service, edges) -> int:
    return service.submit_insert(np.asarray(edges, dtype=np.int64)).wait(10)


class TestReplicationWireOps:
    def test_subscribe_and_stream_everything(self, writer, writer_server):
        insert(writer, [[1, 2], [2, 3], [3, 4]])
        with GraphClient(port=writer_server.port) as c:
            sub = c._roundtrip("subscribe", {"after_seq": 0, "cum_edges": 0,
                                            "replica_id": "t1"})
            assert sub["writer_seq"] == writer.applied_seq
            batch = c._roundtrip("wal_batch", {"max_records": 100,
                                               "wait_s": 0.0})
            assert batch["last_seq"] == writer.applied_seq
            total = sum(len(r["edges"]) for r in batch["records"])
            assert total == 3

    def test_wal_batch_requires_subscribe(self, writer_server):
        with GraphClient(port=writer_server.port) as c:
            with pytest.raises(WorkloadError):
                c._roundtrip("wal_batch", {"max_records": 10, "wait_s": 0.0})

    def test_subscribe_ahead_of_writer_is_cursor_gap(self, writer,
                                                     writer_server):
        insert(writer, [[1, 2]])
        with GraphClient(port=writer_server.port) as c:
            with pytest.raises(ReplicationError):
                c._roundtrip("subscribe", {"after_seq": 999,
                                           "cum_edges": 999,
                                           "replica_id": "t1"})

    def test_resync_ships_consistent_snapshot(self, writer, writer_server):
        insert(writer, [[1, 2], [2, 3], [1, 2]])  # duplicate collapses
        with GraphClient(port=writer_server.port) as c:
            c._roundtrip("subscribe", {"after_seq": 0, "cum_edges": 0,
                                       "replica_id": "t1"})
            snap = c._roundtrip("resync", {})
            assert snap["last_seq"] == writer.applied_seq
            assert snap["digest"]["sha256"] == writer_digest(writer)["sha256"]
            assert len(snap["src"]) == snap["digest"]["n_edges"]

    def test_replica_status_lands_in_writer_health(self, writer,
                                                   writer_server):
        insert(writer, [[1, 2]])
        with GraphClient(port=writer_server.port) as c:
            c._roundtrip("subscribe", {"after_seq": 0, "cum_edges": 0,
                                       "replica_id": "r-health"})
            c._roundtrip("replica_status",
                         {"replica_id": "r-health", "applied_seq": 0,
                          "cum_edges": 0, "generation": 1})
            health = c.health()
            peers = health["replication"]["peers"]
            assert "r-health" in peers
            assert peers["r-health"]["connected"] is True
            assert peers["r-health"]["lag_seq"] == writer.applied_seq


class TestReplicaServer:
    def test_catch_up_then_live_follow(self, writer, writer_server,
                                       tmp_path):
        insert(writer, [[i, i + 1] for i in range(50)])
        with ReplicaServer(tmp_path / "replica", "127.0.0.1",
                           writer_server.port, replica_id="r1",
                           poll_wait_s=0.2, view_refresh_s=0.0, backoff=0.05) as rep:
            assert rep.wait_caught_up(writer.applied_seq)
            assert (replica_digest(rep.service)["sha256"]
                    == writer_digest(writer)["sha256"])
            # live follow: new writes arrive without resubscribing
            insert(writer, [[100 + i, 200 + i] for i in range(20)])
            assert rep.wait_caught_up(writer.applied_seq)
            assert (replica_digest(rep.service)["sha256"]
                    == writer_digest(writer)["sha256"])
            assert rep.service.health()["replication"]["n_resubscribes"] == 0

    def test_replica_serves_reads_with_staleness(self, writer,
                                                 writer_server, tmp_path):
        insert(writer, [[7, 8], [7, 9]])
        with ReplicaServer(tmp_path / "replica", "127.0.0.1",
                           writer_server.port, poll_wait_s=0.2, view_refresh_s=0.0) as rep:
            assert rep.wait_caught_up(writer.applied_seq)
            with GraphClient(port=rep.port) as c:
                c.refresh()  # force the lazy view re-capture
                assert c.degree(7) == 2
                assert c.last_staleness is not None
                assert c.last_staleness["lag_seq"] == 0
                assert c.last_applied_seq == writer.applied_seq

    def test_replica_refuses_mutations(self, writer, writer_server,
                                       tmp_path):
        insert(writer, [[1, 2]])
        with ReplicaServer(tmp_path / "replica", "127.0.0.1",
                           writer_server.port, poll_wait_s=0.2, view_refresh_s=0.0) as rep:
            assert rep.wait_caught_up(writer.applied_seq)
            with GraphClient(port=rep.port) as c:
                with pytest.raises(NotWriterError):
                    c.insert_edges([[5, 6]])

    def test_stale_reads_shed_with_typed_error(self, writer, writer_server,
                                               tmp_path):
        insert(writer, [[1, 2]])
        rep = ReplicaServer(tmp_path / "replica", "127.0.0.1",
                            writer_server.port, poll_wait_s=0.2, view_refresh_s=0.0,
                            max_lag_seq=5).start()
        try:
            assert rep.wait_caught_up(writer.applied_seq)
            rep.link.stop()  # freeze the replica, then outrun it
            rep.service.known_upstream_seq = rep.service.applied_seq + 50
            with GraphClient(port=rep.port) as c:
                with pytest.raises(StaleReadError) as excinfo:
                    c.degree(1)
                from repro.net.protocol import RETRYABLE_CODES
                assert excinfo.value.code in RETRYABLE_CODES
        finally:
            rep.stop()

    def test_kill_dash_nine_restart_converges(self, writer, writer_server,
                                              tmp_path):
        insert(writer, [[i, i + 1] for i in range(30)])
        rep = ReplicaServer(tmp_path / "replica", "127.0.0.1",
                            writer_server.port, replica_id="r1",
                            poll_wait_s=0.2, view_refresh_s=0.0, backoff=0.05).start()
        assert rep.wait_caught_up(writer.applied_seq)
        # crash: tear down the threads but never close the service —
        # nothing gets checkpointed, flushed, or released cleanly.
        rep.link.stop()
        rep.thread.stop()
        # writer keeps moving while the replica is dead
        insert(writer, [[500 + i, 600 + i] for i in range(25)])
        rep2 = ReplicaServer(tmp_path / "replica", "127.0.0.1",
                             writer_server.port, replica_id="r1",
                             poll_wait_s=0.2, view_refresh_s=0.0, backoff=0.05).start()
        try:
            assert rep2.wait_caught_up(writer.applied_seq)
            assert (replica_digest(rep2.service)["sha256"]
                    == writer_digest(writer)["sha256"])
        finally:
            rep2.stop()

    def test_pruned_cursor_triggers_resync(self, tmp_path):
        """A replica joining after checkpoints pruned the WAL cannot
        stream from seq 0 — it must detect the gap and resync."""
        svc = GraphService(tmp_path / "writer", batch_edges=64,
                           flush_interval=0.005, segment_bytes=512,
                           checkpoint_every=4, checkpoint_keep=1)
        try:
            with ServerThread(svc, view_refresh_s=0.0) as thread:
                for i in range(10):
                    insert(svc, [[i * 50 + j, i * 50 + j + 1]
                                 for j in range(40)])
                from repro.service.wal import list_segments
                from repro.service.tail import segment_first_seq
                first = segment_first_seq(
                    list_segments(tmp_path / "writer")[0])
                assert first > 1  # the prefix really is gone
                with ReplicaServer(tmp_path / "replica", "127.0.0.1",
                                   thread.port, poll_wait_s=0.2, view_refresh_s=0.0,
                                   backoff=0.05) as rep:
                    assert rep.wait_caught_up(svc.applied_seq)
                    repl = rep.service.health()["replication"]
                    assert repl["n_resyncs"] >= 1
                    assert (replica_digest(rep.service)["sha256"]
                            == writer_digest(svc)["sha256"])
        finally:
            svc.close()


class TestReplicaSet:
    def test_read_your_writes_after_failover(self, writer, writer_server,
                                             tmp_path):
        with ReplicaServer(tmp_path / "replica", "127.0.0.1",
                           writer_server.port, poll_wait_s=0.2, view_refresh_s=0.0) as rep:
            rs = ReplicaSet(("127.0.0.1", writer_server.port),
                            [("127.0.0.1", rep.port)], timeout=10.0)
            with rs:
                rs.insert_edges([[41, 42], [41, 43]])
                assert rs.floor_seq > 0
                # immediately readable, replica lag notwithstanding
                assert rs.degree(41) == 2

    def test_reads_survive_replica_death(self, writer, writer_server,
                                         tmp_path):
        rep = ReplicaServer(tmp_path / "replica", "127.0.0.1",
                            writer_server.port, poll_wait_s=0.2, view_refresh_s=0.0).start()
        rs = ReplicaSet(("127.0.0.1", writer_server.port),
                        [("127.0.0.1", rep.port)], timeout=5.0)
        try:
            rs.insert_edges([[9, 10]])  # floor makes reads exact
            assert rep.wait_caught_up(writer.applied_seq)
            assert rs.degree(9) == 1
            rep.link.stop()
            rep.thread.stop()  # replica gone; reads must fail over
            for _ in range(5):
                assert rs.degree(9) == 1
            assert rs.n_failovers >= 1
        finally:
            rs.close()
            rep.service.close(checkpoint=False)

    def test_write_reports_cursor_floor(self, writer, writer_server):
        rs = ReplicaSet(("127.0.0.1", writer_server.port), timeout=10.0)
        with rs:
            first = rs.insert_edges([[1, 2]])
            second = rs.insert_edges([[3, 4]])
            assert second["seq"] > first["seq"]
            assert rs.floor_seq == second["seq"]
