"""Replication chaos suite: fault schedules that must end in convergence.

Every test here puts a :class:`~repro.net.chaos.ChaosProxy` between a
real writer and a real replica (or kills a node outright), lets the
fault play out, and then asserts the one property replication promises:
**after the fault heals, the replica's full edge multiset digest equals
the writer's, and no acked write is lost.**  Latency, retry counts and
resubscribes are allowed to vary; divergence and data loss are not.

The proxy injects faults on *frame* boundaries keyed to a global frame
counter, so each schedule is deterministic for a given op sequence.
In-process "kill -9" is modeled by tearing down a replica's threads
without closing its service: nothing is flushed or checkpointed beyond
what each WAL append already made durable — the same disk state a real
SIGKILL leaves behind.
"""

import time

import numpy as np
import pytest

from repro.net.chaos import ChaosProxy
from repro.net.client import GraphClient, ReplicaSet
from repro.net.loadgen import run_loadgen
from repro.net.protocol import RETRYABLE_CODES, store_digest
from repro.net.replication import ReplicaServer
from repro.net.server import ServerThread
from repro.service import GraphService


@pytest.fixture
def writer(tmp_path):
    svc = GraphService(tmp_path / "writer", batch_edges=512,
                       flush_interval=0.005)
    yield svc
    svc.close()


@pytest.fixture
def writer_server(writer):
    with ServerThread(writer, view_refresh_s=0.0) as thread:
        yield thread


def insert(service, edges) -> int:
    return service.submit_insert(np.asarray(edges, dtype=np.int64)).wait(10)


def digests_match(writer, replica_server) -> bool:
    with writer._store_lock:
        w = store_digest(writer._store)["sha256"]
    with replica_server.service._store_lock:
        r = store_digest(replica_server.service._store)["sha256"]
    return w == r


def make_replica(tmp_path, port, name="r1", **kwargs):
    kwargs.setdefault("poll_wait_s", 0.2)
    kwargs.setdefault("backoff", 0.05)
    return ReplicaServer(tmp_path / name, "127.0.0.1", port,
                         replica_id=name, **kwargs)


class TestScheduledFaults:
    def test_cut_mid_stream_converges(self, writer, writer_server,
                                      tmp_path):
        insert(writer, [[i, i + 1] for i in range(100)])
        schedule = [{"at_frame": 8, "action": "cut"},
                    {"at_frame": 20, "action": "cut"}]
        with ChaosProxy("127.0.0.1", writer_server.port,
                        schedule=schedule) as proxy:
            with make_replica(tmp_path, proxy.port) as rep:
                insert(writer, [[200 + i, 300 + i] for i in range(50)])
                assert rep.wait_caught_up(writer.applied_seq, timeout=30)
                assert digests_match(writer, rep)
                repl = rep.service.health()["replication"]
                assert repl["n_resubscribes"] >= 1  # the cut was felt
            assert proxy.n_cut >= 1

    def test_delayed_frames_converge(self, writer, writer_server, tmp_path):
        insert(writer, [[i, i + 1] for i in range(60)])
        schedule = [{"at_frame": f, "action": "delay", "delay_s": 0.15}
                    for f in (4, 7, 10, 13)]
        with ChaosProxy("127.0.0.1", writer_server.port,
                        schedule=schedule) as proxy:
            with make_replica(tmp_path, proxy.port) as rep:
                assert rep.wait_caught_up(writer.applied_seq, timeout=30)
                assert digests_match(writer, rep)
            assert proxy.n_delayed >= 2  # later entries need later frames

    def test_dropped_frame_recovers_via_timeout(self, writer, writer_server,
                                                tmp_path):
        """A swallowed response stalls the link until its request times
        out; the resubscribe must then resume the stream, not restart
        or diverge."""
        insert(writer, [[i, i + 1] for i in range(40)])
        schedule = [{"at_frame": 6, "action": "drop"}]
        with ChaosProxy("127.0.0.1", writer_server.port,
                        schedule=schedule) as proxy:
            rep = make_replica(tmp_path, proxy.port, timeout=1.0)
            with rep:  # the 1s client timeout keeps the stall short
                insert(writer, [[500 + i, 600 + i] for i in range(30)])
                assert rep.wait_caught_up(writer.applied_seq, timeout=30)
                assert digests_match(writer, rep)
            assert proxy.n_dropped == 1

    def test_partition_heals_and_converges(self, writer, writer_server,
                                           tmp_path):
        insert(writer, [[i, i + 1] for i in range(30)])
        with ChaosProxy("127.0.0.1", writer_server.port) as proxy:
            with make_replica(tmp_path, proxy.port) as rep:
                assert rep.wait_caught_up(writer.applied_seq, timeout=30)
                proxy.partition(1.0)
                # the writer keeps acking writes during the partition
                insert(writer, [[700 + i, 800 + i] for i in range(40)])
                assert rep.wait_caught_up(writer.applied_seq, timeout=30)
                assert digests_match(writer, rep)
                assert proxy.n_refused >= 1  # the partition bit


class TestCrashSchedules:
    def test_replica_kill_during_stream_then_restart(self, tmp_path):
        """kill -9 a replica mid-catch-up; restart it against a writer
        that moved on (checkpoints pruning the WAL underneath it)."""
        svc = GraphService(tmp_path / "writer", batch_edges=64,
                           flush_interval=0.005, segment_bytes=512,
                           checkpoint_every=4, checkpoint_keep=1)
        try:
            with ServerThread(svc, view_refresh_s=0.0) as thread:
                insert(svc, [[i, i + 1] for i in range(40)])
                rep = make_replica(tmp_path, thread.port)
                rep.start()
                assert rep.wait_caught_up(svc.applied_seq, timeout=30)
                # SIGKILL: threads die, service never closes
                rep.link.stop()
                rep.thread.stop()
                # writer advances far enough to prune the stream prefix
                for i in range(12):
                    insert(svc, [[i * 60 + j + 1000, i * 60 + j + 1001]
                                 for j in range(50)])
                rep2 = make_replica(tmp_path, thread.port)
                with rep2:
                    assert rep2.wait_caught_up(svc.applied_seq, timeout=30)
                    assert digests_match(svc, rep2)
        finally:
            svc.close()

    def test_writer_restart_mid_stream(self, tmp_path):
        """The writer dies and comes back on a new port (port file);
        the replica must resubscribe and keep its applied prefix."""
        port_file = tmp_path / "writer.port"
        svc = GraphService(tmp_path / "writer", batch_edges=512,
                           flush_interval=0.005)
        thread = ServerThread(svc, view_refresh_s=0.0)
        thread.start()
        port_file.write_text(f"{thread.port}\n")
        rep = ReplicaServer(tmp_path / "replica", "127.0.0.1",
                            upstream_port_file=port_file,
                            replica_id="r1", poll_wait_s=0.2, backoff=0.05)
        try:
            insert(svc, [[i, i + 1] for i in range(30)])
            rep.start()
            assert rep.wait_caught_up(svc.applied_seq, timeout=30)
            applied_before = rep.service.applied_seq

            # abrupt writer death (no close: its WAL is the truth)
            thread.stop()
            svc2, _ = GraphService.open(tmp_path / "writer",
                                        batch_edges=512,
                                        flush_interval=0.005)
            thread2 = ServerThread(svc2, view_refresh_s=0.0)
            thread2.start()
            port_file.write_text(f"{thread2.port}\n")
            try:
                insert(svc2, [[900 + i, 950 + i] for i in range(20)])
                assert rep.wait_caught_up(svc2.applied_seq, timeout=30)
                assert digests_match(svc2, rep)
                assert rep.service.applied_seq > applied_before
            finally:
                thread2.stop()
                svc2.close()
        finally:
            rep.stop()
            svc.close()


class TestLoadgenAvailability:
    def test_zero_nonretryable_errors_with_replica_killed(self, writer,
                                                          writer_server,
                                                          tmp_path):
        """The acceptance scenario: loadgen against one writer + two
        replicas; one replica is killed mid-run.  Every client op must
        either succeed or fail with a retryable/failover code — the
        death is allowed to cost latency, never correctness."""
        insert(writer, [[i, i + 1] for i in range(20)])
        r1 = make_replica(tmp_path, writer_server.port, "r1",
                          view_refresh_s=0.0).start()
        r2 = make_replica(tmp_path, writer_server.port, "r2",
                          view_refresh_s=0.0).start()
        killed = False
        try:
            assert r1.wait_caught_up(writer.applied_seq, timeout=30)
            assert r2.wait_caught_up(writer.applied_seq, timeout=30)

            import threading

            def kill_r2():
                time.sleep(1.0)
                r2.link.stop()
                r2.thread.stop()  # SIGKILL-style: service never closed

            killer = threading.Thread(target=kill_r2)
            killer.start()
            stats = run_loadgen(
                "127.0.0.1", writer_server.port,
                clients=2, duration=3.0, read_fraction=0.9,
                scale=8, batch_edges=8, batches_per_worker=16,
                seed=7, retries=5, timeout=5.0,
                replicas=[("127.0.0.1", r1.port), ("127.0.0.1", r2.port)])
            killer.join()
            killed = True
            assert stats.total_ops > 0
            allowed = RETRYABLE_CODES | {"NOT_WRITER", "UNAVAILABLE"}
            assert set(stats.errors) <= allowed, stats.errors
            # acked writes all survived on the writer
            acked = stats.n_edges_written
            assert acked > 0
            assert r1.wait_caught_up(writer.applied_seq, timeout=30)
            assert digests_match(writer, r1)
        finally:
            r1.stop()
            if killed:
                r2.service.close(checkpoint=False)
            else:
                r2.stop()
