"""Tests for the table reporter."""

import pytest

from repro.bench.reporting import Table, fmt_ratio


class TestTable:
    def test_render_contains_title_columns_rows(self):
        t = Table("demo", ["a", "b"])
        t.add_row([1, 2.5])
        text = t.render()
        assert "demo" in text
        assert "a" in text and "b" in text
        assert "2.500" in text

    def test_column_count_enforced(self):
        t = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_float_formatting(self):
        assert Table._fmt(0.0) == "0"
        assert Table._fmt(1234.5) == "1.23e+03"
        assert Table._fmt(0.001) == "0.001"
        assert Table._fmt(1.25) == "1.250"
        assert Table._fmt("x") == "x"

    def test_alignment(self):
        t = Table("demo", ["name", "v"])
        t.add_row(["longer-name", 1])
        t.add_row(["x", 22])
        lines = t.render().splitlines()
        # all data lines share the separator column position
        positions = {line.index("|") for line in lines[1:] if "|" in line}
        assert len(positions) == 1


class TestFmtRatio:
    def test_basic(self):
        assert fmt_ratio(4.0, 2.0) == "2.00x"

    def test_zero_denominator(self):
        assert fmt_ratio(1.0, 0.0) == "inf"
