"""Tests for the Graph500 RMAT generator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WorkloadError
from repro.workloads.rmat import degree_skew, rmat_edges, rmat_edges_unique


class TestRmatEdges:
    def test_shape_and_dtype(self):
        edges = rmat_edges(8, 1000, seed=1)
        assert edges.shape == (1000, 2)
        assert edges.dtype == np.int64

    def test_ids_within_vertex_space(self):
        edges = rmat_edges(6, 5000, seed=2)
        assert edges.min() >= 0
        assert edges.max() < 2**6

    def test_deterministic_per_seed(self):
        a = rmat_edges(8, 500, seed=7)
        b = rmat_edges(8, 500, seed=7)
        assert (a == b).all()

    def test_seeds_differ(self):
        a = rmat_edges(8, 500, seed=7)
        b = rmat_edges(8, 500, seed=8)
        assert not (a == b).all()

    def test_skewed_degrees(self):
        """RMAT with Graph500 params must be hub-heavy, not uniform."""
        skew_rmat = degree_skew(rmat_edges(12, 30000, seed=3))
        uniform = np.column_stack([
            np.random.default_rng(3).integers(0, 2**12, 30000),
            np.random.default_rng(4).integers(0, 2**12, 30000),
        ])
        assert skew_rmat > 3 * degree_skew(uniform)

    def test_zero_edges(self):
        assert rmat_edges(5, 0).shape == (0, 2)

    @pytest.mark.parametrize("scale", [0, -1, 63])
    def test_bad_scale(self, scale):
        with pytest.raises(WorkloadError):
            rmat_edges(scale, 10)

    def test_bad_probabilities(self):
        with pytest.raises(WorkloadError):
            rmat_edges(5, 10, a=0.9, b=0.2, c=0.2, d=0.2)
        with pytest.raises(WorkloadError):
            rmat_edges(5, 10, a=-0.1, b=0.5, c=0.3, d=0.3)

    def test_negative_edge_count(self):
        with pytest.raises(WorkloadError):
            rmat_edges(5, -1)

    def test_quadrant_probabilities_respected(self):
        """With a=1-eps the mass concentrates in the low-id quadrant."""
        edges = rmat_edges(10, 20000, a=0.97, b=0.01, c=0.01, d=0.01,
                           seed=5, noise=0.0)
        frac_low = ((edges[:, 0] < 2**9) & (edges[:, 1] < 2**9)).mean()
        assert frac_low > 0.8


class TestRmatUnique:
    def test_no_duplicates_no_self_loops(self):
        edges = rmat_edges_unique(9, 4000, seed=11)
        assert edges.shape == (4000, 2)
        keys = (edges[:, 0] << 9) | edges[:, 1]
        assert np.unique(keys).shape[0] == 4000
        assert (edges[:, 0] != edges[:, 1]).all()

    def test_deterministic(self):
        a = rmat_edges_unique(8, 1000, seed=3)
        b = rmat_edges_unique(8, 1000, seed=3)
        assert (a == b).all()

    def test_impossible_density_raises(self):
        with pytest.raises(WorkloadError):
            # 2^3=8 vertices cannot host 1000 distinct edges
            rmat_edges_unique(3, 1000, seed=1, max_rounds=4)


@settings(max_examples=20, deadline=None)
@given(scale=st.integers(min_value=5, max_value=12),
       n=st.integers(min_value=1, max_value=2000),
       seed=st.integers(min_value=0, max_value=1000))
def test_rmat_unique_properties(scale, n, seed):
    n = min(n, (2**scale) * (2**scale) // 16)
    edges = rmat_edges_unique(scale, n, seed=seed)
    assert edges.shape == (n, 2)
    assert edges.min() >= 0 if n else True
    keys = (edges[:, 0].astype(np.int64) << scale) | edges[:, 1]
    assert np.unique(keys).shape[0] == n
