"""Unit + property tests for the per-Subblock Robin Hood kernel."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import robin_hood as rhh
from repro.core.pool import EMPTY, TOMBSTONE, blank_edge_cells
from repro.core.stats import AccessStats

SB = 8  # subblock size used throughout
WB = 4  # workblock size


def fresh():
    return blank_edge_cells(SB), AccessStats()


class TestInsertBasics:
    def test_insert_into_empty(self):
        cells, stats = fresh()
        res = rhh.rhh_insert(cells, 5, 1.5, 2, WB, stats, True)
        assert res.status == rhh.INSERTED
        assert cells["dst"][res.slot] == 5
        assert cells["weight"][res.slot] == 1.5
        assert cells["probe"][res.slot] == 0

    def test_duplicate_updates_weight(self):
        cells, stats = fresh()
        rhh.rhh_insert(cells, 5, 1.0, 2, WB, stats, True)
        res = rhh.rhh_insert(cells, 5, 9.0, 2, WB, stats, True)
        assert res.status == rhh.UPDATED
        assert cells["weight"][res.slot] == 9.0
        assert (cells["dst"] >= 0).sum() == 1

    def test_collision_probes_forward(self):
        cells, stats = fresh()
        rhh.rhh_insert(cells, 1, 1.0, 3, WB, stats, True)
        res = rhh.rhh_insert(cells, 2, 1.0, 3, WB, stats, True)
        assert res.status == rhh.INSERTED
        assert res.slot == 4
        assert cells["probe"][4] == 1

    def test_wraps_within_subblock(self):
        cells, stats = fresh()
        rhh.rhh_insert(cells, 1, 1.0, SB - 1, WB, stats, True)
        res = rhh.rhh_insert(cells, 2, 1.0, SB - 1, WB, stats, True)
        assert res.status == rhh.INSERTED
        assert res.slot == 0  # wrapped

    def test_congestion_when_full(self):
        cells, stats = fresh()
        for d in range(SB):
            assert rhh.rhh_insert(cells, d, 1.0, d, WB, stats, True).status == rhh.INSERTED
        res = rhh.rhh_insert(cells, 99, 1.0, 0, WB, stats, True)
        assert res.status == rhh.CONGESTED
        # The edge population is conserved: the cells plus the floating
        # overflow edge hold exactly the original residents plus 99.
        live = {int(x) for x in cells["dst"] if x >= 0}
        assert live | {res.overflow_dst} == set(range(SB)) | {99}
        assert len(live) == SB


class TestRobinHoodDisplacement:
    def test_poorer_edge_displaces_richer(self):
        """An edge far from home evicts an edge at its initial bucket."""
        cells, stats = fresh()
        # resident at slot 2 with probe 0
        rhh.rhh_insert(cells, 10, 1.0, 2, WB, stats, True)
        # new edge hashes to 0, slots 0..1 occupied => arrives at 2 with probe 2
        rhh.rhh_insert(cells, 20, 1.0, 0, WB, stats, True)
        rhh.rhh_insert(cells, 30, 1.0, 0, WB, stats, True)  # probes to 1
        res = rhh.rhh_insert(cells, 40, 1.0, 0, WB, stats, True)
        assert res.status == rhh.INSERTED
        # 40 had probe 2 at slot 2 vs resident 10's probe 0 -> swap
        assert cells["dst"][2] == 40
        assert cells["dst"][3] == 10  # displaced resident moved on
        assert stats.rhh_swaps >= 1

    def test_swap_preserves_all_edges(self):
        cells, stats = fresh()
        inserted = []
        rng = np.random.default_rng(3)
        for d in rng.permutation(100)[:SB]:
            r = rhh.rhh_insert(cells, int(d), float(d), int(d) % SB, WB, stats, True)
            assert r.status == rhh.INSERTED
            inserted.append(int(d))
        live = sorted(int(x) for x in cells["dst"] if x >= 0)
        assert live == sorted(inserted)

    def test_congested_overflow_carries_cal_pointer(self):
        cells, stats = fresh()
        for d in range(SB):
            rhh.rhh_insert(cells, d, 1.0, 0, WB, stats, True, cal_block=d, cal_slot=d)
        res = rhh.rhh_insert(cells, 99, 2.0, 0, WB, stats, True, cal_block=77, cal_slot=8)
        assert res.status == rhh.CONGESTED
        # whoever floats out must carry its own CAL pointer
        if res.overflow_dst == 99:
            assert (res.overflow_cal_block, res.overflow_cal_slot) == (77, 8)
        else:
            assert res.overflow_cal_block == res.overflow_dst  # residents had cal_block=d


class TestFind:
    def test_find_present(self):
        cells, stats = fresh()
        rhh.rhh_insert(cells, 7, 1.0, 4, WB, stats, True)
        assert rhh.rhh_find(cells, 7, 4, WB, stats, True) >= 0

    def test_find_absent_stops_at_empty(self):
        cells, stats = fresh()
        before = stats.cells_scanned
        assert rhh.rhh_find(cells, 7, 0, WB, stats, True) == -1
        assert stats.cells_scanned - before == 1  # stopped at first EMPTY

    def test_find_scans_past_tombstone(self):
        cells, stats = fresh()
        rhh.rhh_insert(cells, 1, 1.0, 0, WB, stats, True)
        rhh.rhh_insert(cells, 2, 1.0, 0, WB, stats, True)
        rhh.rhh_delete(cells, 1, 0, WB, stats, True)
        assert rhh.rhh_find(cells, 2, 0, WB, stats, True) == 1

    def test_find_non_rhh_mode_scans_whole_subblock(self):
        """Compact mode may relocate edges anywhere in the Subblock."""
        cells, stats = fresh()
        cells["dst"][6] = 42  # placed by compaction, not by probing
        assert rhh.rhh_find(cells, 42, 0, WB, stats, False) == 6


class TestDelete:
    def test_delete_sets_tombstone(self):
        cells, stats = fresh()
        rhh.rhh_insert(cells, 5, 1.0, 1, WB, stats, True)
        slot = rhh.rhh_delete(cells, 5, 1, WB, stats, True)
        assert slot >= 0
        assert cells["dst"][slot] == TOMBSTONE
        assert stats.tombstones_set == 1

    def test_delete_absent(self):
        cells, stats = fresh()
        assert rhh.rhh_delete(cells, 5, 1, WB, stats, True) == -1

    def test_tombstone_slot_reused_by_insert(self):
        cells, stats = fresh()
        rhh.rhh_insert(cells, 5, 1.0, 1, WB, stats, True)
        rhh.rhh_delete(cells, 5, 1, WB, stats, True)
        res = rhh.rhh_insert(cells, 6, 1.0, 1, WB, stats, True)
        assert res.status == rhh.INSERTED
        assert res.slot == 1

    def test_delete_clears_cal_pointer(self):
        cells, stats = fresh()
        rhh.rhh_insert(cells, 5, 1.0, 1, WB, stats, True, cal_block=3, cal_slot=4)
        slot = rhh.rhh_delete(cells, 5, 1, WB, stats, True)
        assert cells["cal_block"][slot] == -1


class TestAccounting:
    def test_workblock_fetches_counted_once_per_workblock(self):
        cells, stats = fresh()
        rhh.rhh_insert(cells, 0, 1.0, 0, WB, stats, True)
        assert stats.workblock_fetches == 1  # slot 0 => one workblock
        stats.reset()
        # probe spanning both workblocks
        for d in range(1, SB):
            rhh.rhh_insert(cells, d, 1.0, 0, WB, stats, True)
        assert stats.workblock_fetches >= 2

    def test_writeback_counted_on_mutation_only(self):
        cells, stats = fresh()
        rhh.rhh_find(cells, 1, 0, WB, stats, True)
        assert stats.workblock_writebacks == 0
        rhh.rhh_insert(cells, 1, 1.0, 0, WB, stats, True)
        assert stats.workblock_writebacks == 1


@given(
    start=st.integers(min_value=0, max_value=63),
    length=st.integers(min_value=0, max_value=64),
    workblock=st.sampled_from([1, 2, 4, 8]),
    size=st.sampled_from([8, 16, 32, 64]),
)
def test_circular_workblock_count_matches_bruteforce(start, length, workblock, size):
    """Property: the closed-form Workblock counter equals set-based dedup."""
    from repro.core.robin_hood import _circular_workblocks

    start %= size
    length = min(length, size)
    slots = [(start + i) % size for i in range(length)]
    expected = len({s // workblock for s in slots})
    assert _circular_workblocks(start, length, workblock, size) == expected


@settings(max_examples=200)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete"]),
            st.integers(min_value=0, max_value=15),
            st.integers(min_value=0, max_value=SB - 1),
        ),
        max_size=40,
    ),
    rhh_mode=st.booleans(),
)
def test_subblock_model_equivalence(ops, rhh_mode):
    """Property: a Subblock behaves like a capacity-SB set of (dst, w).

    Initial buckets are arbitrary per-key but fixed within the sequence
    (hash determinism), modelled by bucket = dst % SB.
    """
    cells = blank_edge_cells(SB)
    stats = AccessStats()
    model: dict[int, float] = {}
    for op, dst, _ in ops:
        bucket = dst % SB
        if op == "insert":
            res = rhh.rhh_insert(cells, dst, float(dst), bucket, WB, stats, rhh_mode)
            if res.status in (rhh.INSERTED, rhh.UPDATED):
                model[dst] = float(dst)
            else:
                assert len(model) == SB  # congestion only when full
                if res.slot >= 0:
                    # Argument placed via a swap; a resident floats out
                    # carrying its own weight (the caller re-inserts it
                    # in a child edgeblock).
                    assert res.overflow_dst in model
                    assert res.overflow_weight == model.pop(res.overflow_dst)
                    model[dst] = float(dst)
                else:
                    assert res.overflow_dst == dst
        else:
            slot = rhh.rhh_delete(cells, dst, bucket, WB, stats, rhh_mode)
            assert (slot >= 0) == (dst in model)
            model.pop(dst, None)
        # full-content check
        live = {int(d): float(w) for d, w in zip(cells["dst"], cells["weight"]) if d >= 0}
        assert live == model
