"""Tests for the GraphService frontend and checkpoint manager."""

import threading

import numpy as np
import pytest

import repro.obs as obs
from repro.core.config import GTConfig
from repro.core.graphtinker import GraphTinker
from repro.engine.algorithms import BFS
from repro.errors import ServiceError
from repro.service import (
    CheckpointManager,
    GraphService,
    latest_checkpoint,
    list_checkpoints,
    list_segments,
    load_checkpoint,
    recover,
)
from repro.workloads import rmat_edges


def edge_set(store):
    src, dst, _ = store.analytics_edges()
    return set(zip(src.tolist(), dst.tolist()))


@pytest.fixture
def edges():
    return rmat_edges(8, 2500, seed=7)


@pytest.fixture
def fresh_registry():
    registry = obs.MetricsRegistry()
    prior = obs.set_registry(registry)
    with obs.enabled_scope(True):
        yield registry
    obs.set_registry(prior)


class TestIngest:
    def test_tickets_resolve_with_sequences(self, tmp_path, edges):
        with GraphService(tmp_path, batch_edges=500, flush_interval=0.01) as svc:
            tickets = [svc.submit_insert(edges[i:i + 250])
                       for i in range(0, 1000, 250)]
            seqs = [t.wait(10) for t in tickets]
        assert all(s >= 1 for s in seqs)
        assert seqs == sorted(seqs)

    def test_state_matches_direct_inserts(self, tmp_path, edges):
        with GraphService(tmp_path, batch_edges=400, flush_interval=0.005) as svc:
            for i in range(0, edges.shape[0], 300):
                svc.submit_insert(edges[i:i + 300])
            svc.flush_now()
            got = edge_set(svc)
            n = svc.n_edges
        ref = GraphTinker()
        ref.insert_batch(edges)
        assert got == edge_set(ref)
        assert n == ref.n_edges

    def test_deletes_interleave_in_order(self, tmp_path, edges):
        with GraphService(tmp_path, batch_edges=10_000, flush_interval=60) as svc:
            svc.submit_insert(edges)
            svc.submit_delete(edges[:500])
            svc.flush_now()  # both requests land in ONE coalesced flush
            got = edge_set(svc)
        ref = GraphTinker()
        ref.insert_batch(edges)
        ref.delete_batch(edges[:500])
        assert got == edge_set(ref)

    def test_concurrent_submitters(self, tmp_path, edges):
        chunks = [edges[i:i + 100] for i in range(0, edges.shape[0], 100)]
        with GraphService(tmp_path, batch_edges=600, flush_interval=0.005) as svc:
            def worker(mine):
                for chunk in mine:
                    svc.submit_insert(chunk).wait(30)
            threads = [threading.Thread(target=worker, args=(chunks[k::4],))
                       for k in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            got = edge_set(svc)
        ref = GraphTinker()
        ref.insert_batch(edges)
        assert got == edge_set(ref)  # inserts commute as a set

    def test_submit_validates_shapes(self, tmp_path):
        with GraphService(tmp_path) as svc:
            with pytest.raises(ServiceError):
                svc.submit_insert(np.arange(4))
            with pytest.raises(ServiceError):
                svc.submit_insert(np.zeros((3, 2), dtype=np.int64),
                                  weights=np.ones(2))

    def test_submit_after_close_raises(self, tmp_path):
        svc = GraphService(tmp_path)
        svc.close()
        with pytest.raises(ServiceError, match="closed"):
            svc.submit_insert(np.zeros((1, 2), dtype=np.int64))

    def test_reads_are_served(self, tmp_path):
        with GraphService(tmp_path, flush_interval=0.005) as svc:
            svc.submit_insert(np.array([[1, 2], [1, 3], [4, 1]])).wait(10)
            assert svc.n_edges == 3
            assert svc.degree(1) == 2
            assert svc.has_edge(4, 1)
            dsts, _ = svc.neighbors(1)
            assert set(dsts.tolist()) == {2, 3}

    def test_analytics_via_engine(self, tmp_path):
        chain = np.array([[0, 1], [1, 2], [2, 3], [9, 9]])
        with GraphService(tmp_path, flush_interval=0.005) as svc:
            svc.submit_insert(chain).wait(10)
            result = svc.analytics(BFS(), roots=[0])
        assert result.n_iterations >= 1


class TestBackpressure:
    def test_queue_full_times_out(self, tmp_path):
        # Huge size trigger + long latency trigger: the flusher sits on
        # the queue, so the bound is what pushes back.
        with GraphService(tmp_path, batch_edges=10**9, flush_interval=60,
                          queue_limit=2, submit_timeout=0.05) as svc:
            svc.submit_insert(np.array([[0, 1]]))
            svc.submit_insert(np.array([[0, 2]]))
            with pytest.raises(ServiceError, match="backpressure"):
                svc.submit_insert(np.array([[0, 3]]))

    def test_queue_metrics(self, tmp_path, fresh_registry):
        with GraphService(tmp_path, flush_interval=0.005) as svc:
            svc.submit_insert(np.array([[0, 1]])).wait(10)
            svc.flush_now()
        assert fresh_registry.counter("service.queue.enqueued").value == 1
        assert fresh_registry.counter("service.flush.batches").value >= 1
        assert fresh_registry.counter("service.wal.appends").value >= 1
        assert fresh_registry.counter("service.flush.edges").value == 1


class TestConstruction:
    def test_refuses_dirty_directory(self, tmp_path, edges):
        with GraphService(tmp_path, flush_interval=0.005) as svc:
            svc.submit_insert(edges[:100]).wait(10)
        with pytest.raises(ServiceError, match="recover first"):
            GraphService(tmp_path)

    def test_open_recovers_and_resumes(self, tmp_path, edges):
        with GraphService(tmp_path, flush_interval=0.005) as svc:
            svc.submit_insert(edges[:400]).wait(10)
        svc2, result = GraphService.open(tmp_path, flush_interval=0.005)
        with svc2:
            assert result.cum_edges == 400
            svc2.submit_insert(edges[400:800]).wait(10)
            got = edge_set(svc2)
        ref = GraphTinker()
        ref.insert_batch(edges[:800])
        assert got == edge_set(ref)

    def test_validates_knobs(self, tmp_path):
        with pytest.raises(ServiceError):
            GraphService(tmp_path, batch_edges=0)
        with pytest.raises(ServiceError):
            GraphService(tmp_path, queue_limit=0)


class TestCheckpoint:
    def test_checkpoint_prunes_wal(self, tmp_path, edges):
        with GraphService(tmp_path, flush_interval=0.005,
                          segment_bytes=2048, checkpoint_keep=1) as svc:
            for i in range(0, 2000, 200):
                svc.submit_insert(edges[i:i + 200]).wait(10)
            assert len(list_segments(tmp_path)) > 1
            svc.checkpoint()
            assert len(list_segments(tmp_path)) == 1  # only the active one
            assert len(list_checkpoints(tmp_path)) == 1

    def test_recovery_prefers_checkpoint(self, tmp_path, edges):
        with GraphService(tmp_path, flush_interval=0.005) as svc:
            svc.submit_insert(edges[:600]).wait(10)
            svc.checkpoint()
            svc.submit_insert(edges[600:900]).wait(10)
        result = recover(tmp_path)
        assert result.checkpoint_seq == 1
        assert result.replayed_records == 1   # only the post-checkpoint batch
        # Record 1 shares the active segment (never pruned), so it is
        # present but *skipped* — already inside the checkpoint.
        assert result.skipped_records == 1
        ref = GraphTinker()
        ref.insert_batch(edges[:900])
        assert edge_set(result.store) == edge_set(ref)

    def test_checkpoint_keeps_fallbacks(self, tmp_path, edges):
        with GraphService(tmp_path, flush_interval=0.005,
                          checkpoint_keep=2) as svc:
            svc.submit_insert(edges[:300]).wait(10)
            svc.checkpoint()
            svc.submit_insert(edges[300:600]).wait(10)
            svc.checkpoint()
            svc.submit_insert(edges[600:700]).wait(10)
            svc.checkpoint()
        assert len(list_checkpoints(tmp_path)) == 2

    def test_corrupt_newest_checkpoint_falls_back(self, tmp_path, edges):
        with GraphService(tmp_path, flush_interval=0.005) as svc:
            svc.submit_insert(edges[:300]).wait(10)
            svc.checkpoint()
            svc.submit_insert(edges[300:500]).wait(10)
            svc.checkpoint()
        newest = list_checkpoints(tmp_path)[-1]
        newest.write_bytes(b"garbage")
        result = recover(tmp_path)
        assert result.checkpoint_seq == 1
        ref = GraphTinker()
        ref.insert_batch(edges[:500])
        assert edge_set(result.store) == edge_set(ref)

    def test_auto_checkpoint_every(self, tmp_path, edges):
        with GraphService(tmp_path, flush_interval=0.005,
                          checkpoint_every=2) as svc:
            for i in range(0, 1200, 200):
                svc.submit_insert(edges[i:i + 200]).wait(10)
        assert len(list_checkpoints(tmp_path)) >= 1

    def test_checkpoint_embeds_cursor_and_config(self, tmp_path, edges):
        config = GTConfig(pagewidth=16, subblock=4, workblock=2)
        with GraphService(tmp_path, config=config,
                          flush_interval=0.005) as svc:
            svc.submit_insert(edges[:200]).wait(10)
            path = svc.checkpoint()
        info = load_checkpoint(path)
        assert info.last_seq == 1
        assert info.cum_edges == 200
        assert info.snapshot.writer_config == config
        # Recovery restores under the embedded writer config.
        result = recover(tmp_path)
        assert result.store.config == config

    def test_plain_snapshot_is_not_a_checkpoint(self, tmp_path):
        from repro.workloads.persistence import save_snapshot

        gt = GraphTinker()
        gt.insert_edge(1, 2)
        target = tmp_path / "checkpoint-00000000000000000005.npz"
        save_snapshot(gt, target)  # no WAL cursor in meta
        with pytest.raises(ServiceError, match="no WAL cursor"):
            load_checkpoint(target)
        assert latest_checkpoint(tmp_path) is None

    def test_manager_validates_keep(self, tmp_path):
        with pytest.raises(ServiceError):
            CheckpointManager(tmp_path, keep=0)
