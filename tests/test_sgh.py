"""Unit + property tests for the Scatter-Gather Hashing unit."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.sgh import ScatterGatherHash
from repro.errors import VertexNotFoundError


class TestDenseAssignment:
    def test_ids_assigned_from_zero_in_arrival_order(self):
        sgh = ScatterGatherHash()
        assert sgh.hash_id(34) == 0
        assert sgh.hash_id(22789) == 1
        assert sgh.hash_id(5) == 2

    def test_repeat_returns_same_id(self):
        sgh = ScatterGatherHash()
        first = sgh.hash_id(99)
        assert sgh.hash_id(99) == first
        assert len(sgh) == 1

    def test_lookup_without_assign(self):
        sgh = ScatterGatherHash()
        sgh.hash_id(7)
        assert sgh.lookup(7) == 0
        with pytest.raises(VertexNotFoundError):
            sgh.lookup(8)
        assert len(sgh) == 1  # lookup never assigns

    def test_try_lookup(self):
        sgh = ScatterGatherHash()
        assert sgh.try_lookup(1) is None
        sgh.hash_id(1)
        assert sgh.try_lookup(1) == 0

    def test_contains(self):
        sgh = ScatterGatherHash()
        sgh.hash_id(42)
        assert 42 in sgh
        assert 43 not in sgh


class TestInverse:
    def test_roundtrip(self):
        sgh = ScatterGatherHash()
        originals = [100, 2, 999999, 5]
        for o in originals:
            sgh.hash_id(o)
        for o in originals:
            assert sgh.original_id(sgh.lookup(o)) == o

    def test_original_id_out_of_range(self):
        sgh = ScatterGatherHash()
        with pytest.raises(VertexNotFoundError):
            sgh.original_id(0)

    def test_vectorised_inverse(self):
        sgh = ScatterGatherHash()
        for o in (10, 20, 30):
            sgh.hash_id(o)
        got = sgh.original_ids(np.array([2, 0, 1]))
        assert got.tolist() == [30, 10, 20]

    def test_reverse_view_read_only(self):
        sgh = ScatterGatherHash()
        sgh.hash_id(5)
        view = sgh.reverse_view()
        assert view.tolist() == [5]
        with pytest.raises(ValueError):
            view[0] = 1


class TestGrowthAndBatch:
    def test_growth_beyond_initial_capacity(self):
        sgh = ScatterGatherHash(initial_capacity=2)
        for o in range(1000):
            sgh.hash_id(o * 7 + 3)
        assert len(sgh) == 1000
        assert sgh.original_id(999) == 999 * 7 + 3

    def test_batch_assignment_order(self):
        sgh = ScatterGatherHash()
        ids = sgh.hash_ids_array(np.array([50, 60, 50, 70]))
        assert ids.tolist() == [0, 1, 0, 2]

    def test_stats_counted(self):
        sgh = ScatterGatherHash()
        sgh.hash_id(1)
        sgh.lookup(1)
        sgh.try_lookup(2)
        assert sgh.stats.hash_lookups == 3


@given(st.lists(st.integers(min_value=0, max_value=10**12), min_size=1, max_size=500))
def test_sgh_is_a_bijection_onto_dense_prefix(originals):
    """Property: the mapping is a bijection distinct-originals <-> [0, n)."""
    sgh = ScatterGatherHash()
    for o in originals:
        sgh.hash_id(o)
    distinct = list(dict.fromkeys(originals))
    assert len(sgh) == len(distinct)
    dense = [sgh.lookup(o) for o in distinct]
    assert sorted(dense) == list(range(len(distinct)))
    assert [sgh.original_id(i) for i in dense] == distinct
