"""ShardedStore unit oracle: routing, merge equivalence, placement.

The conformance suite already holds :class:`~repro.core.sharded.ShardedStore`
to the full Store protocol and the differential suite runs it in lockstep
against the reference; this module pins the sharding-*specific* contracts:

* **routing determinism** — vertex placement is a pure function of
  ``(src, n_shards, seed)``: it matches
  :func:`repro.core.hashing.partition_of`, two same-seed stores place
  identically, and every inserted source's edges live on exactly the
  shard the router names (no leaks onto non-owner shards);
* **shard-count invariance** — ``store_digest`` of the same stream is
  identical at every shard count and equals the unsharded backend's;
* **scatter-gather merge** — ``neighbors_many`` returns exactly the
  triples of the serial per-vertex gather loop, in the same global
  sorted-source order, and charges exactly the serial loop's modeled
  ``AccessStats`` (the charging-oracle contract, bit-for-bit);
* a **hypothesis** interleaving oracle that shrinks random op sequences
  against a dict model and the cross-shard placement invariant.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ShardedConfig
from repro.core.graphtinker import GraphTinker
from repro.core.hashing import partition_of, partition_of_array
from repro.core.sharded import ShardedStore
from repro.core.store import create_store, store_digest
from repro.engine.snapshot import gather_active_scalar, sanitize_active
from repro.workloads.rmat import rmat_edges

N_SHARDS = 3
SEED = 7


@pytest.fixture
def factory():
    stores: list[ShardedStore] = []

    def make(**kwargs) -> ShardedStore:
        store = ShardedStore(ShardedConfig(**kwargs))
        stores.append(store)
        return store

    yield make
    for store in stores:
        store.close()


def _stream(n_edges: int = 900, seed: int = 5) -> np.ndarray:
    return rmat_edges(7, n_edges, seed=seed)


# --------------------------------------------------------------------- #
# routing determinism
# --------------------------------------------------------------------- #
def test_routing_matches_partition_of(factory):
    store = factory(n_shards=N_SHARDS, seed=SEED)
    for src in list(range(64)) + [1_000, 123_456, 2**31]:
        assert store._shard_of(src) == partition_of(src, N_SHARDS, SEED)
    srcs = np.arange(200, dtype=np.int64)
    assert np.array_equal(
        partition_of_array(srcs, N_SHARDS, SEED),
        np.array([store._shard_of(int(s)) for s in srcs]))


def test_same_seed_places_identically(factory):
    edges = _stream()
    a = factory(n_shards=N_SHARDS, seed=SEED)
    b = factory(n_shards=N_SHARDS, seed=SEED)
    a.insert_batch(edges)
    b.insert_batch(edges)
    per_shard_a = [a._call(k, ("n_edges",)) for k in range(N_SHARDS)]
    per_shard_b = [b._call(k, ("n_edges",)) for k in range(N_SHARDS)]
    assert per_shard_a == per_shard_b
    assert sum(per_shard_a) == a.n_edges
    # Every shard holds something on this stream — the router spreads.
    assert all(n > 0 for n in per_shard_a)


def test_seed_changes_placement_not_content(factory):
    edges = _stream()
    a = factory(n_shards=N_SHARDS, seed=0)
    b = factory(n_shards=N_SHARDS, seed=99)
    a.insert_batch(edges)
    b.insert_batch(edges)
    assert [a._call(k, ("n_edges",)) for k in range(N_SHARDS)] != \
        [b._call(k, ("n_edges",)) for k in range(N_SHARDS)]
    assert store_digest(a) == store_digest(b)


def test_no_edge_leaks_to_non_owner_shard(factory):
    store = factory(n_shards=N_SHARDS, seed=SEED)
    edges = _stream()
    store.insert_batch(edges)
    for src in np.unique(edges[:, 0])[:40].tolist():
        owner = store._shard_of(src)
        for k in range(N_SHARDS):
            dsts, _, _ = store._call(k, ("neighbors", src))
            if k == owner:
                assert dsts.shape[0] == store.degree(src)
            else:
                assert dsts.shape[0] == 0, \
                    f"src {src} leaked onto shard {k} (owner {owner})"


# --------------------------------------------------------------------- #
# shard-count invariance
# --------------------------------------------------------------------- #
def test_digest_invariant_under_shard_count(factory):
    edges = _stream(1_200)
    rng = np.random.default_rng(3)
    weights = rng.random(edges.shape[0])
    dels = edges[rng.integers(0, edges.shape[0], 300)]

    plain = create_store("graphtinker")
    plain.insert_batch(edges, weights)
    plain.delete_batch(dels)
    want = store_digest(plain)

    for n_shards in (1, 2, 3, 5):
        store = factory(n_shards=n_shards, seed=SEED)
        store.insert_batch(edges, weights)
        store.delete_batch(dels)
        assert store_digest(store) == want, f"n_shards={n_shards}"
        assert store.n_edges == plain.n_edges


# --------------------------------------------------------------------- #
# scatter-gather merge equivalence (triples AND modeled charges)
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("active_raw", [
    np.arange(128, dtype=np.int64),                      # full sweep
    np.array([5, 3, 5, 3, 90, -2, 4_000], dtype=np.int64),  # dirty input
    np.array([], dtype=np.int64),                        # empty frontier
    np.array([9], dtype=np.int64),                       # single source
], ids=["sweep", "dirty", "empty", "single"])
def test_neighbors_many_matches_serial_gather(factory, active_raw):
    edges = _stream()
    sharded = factory(n_shards=N_SHARDS, seed=SEED)
    twin = factory(n_shards=N_SHARDS, seed=SEED)
    serial = GraphTinker()
    for store in (sharded, twin, serial):
        store.insert_batch(edges)

    # Values: the scatter-gather merge must reproduce the serial
    # per-vertex gather over an *unsharded* backend holding the same
    # edges (cross-backend equivalence of the triples).
    got = sharded.neighbors_many(active_raw.copy())
    want = gather_active_scalar(serial, sanitize_active(active_raw.copy()))
    for g, w, label in zip(got, want, ("src", "dst", "weight")):
        assert np.array_equal(g, w), f"{label} arrays diverge"

    # Charges: bit-identical to the serial per-vertex loop driven over an
    # identically-loaded sharded twin — the charging-oracle contract.
    # (An unsharded instance is *not* the charge oracle: three small
    # per-shard structures legally charge differently than one big one.)
    before_sh = sharded.stats.snapshot()
    before_tw = twin.stats.snapshot()
    again = sharded.neighbors_many(active_raw.copy())
    slow = gather_active_scalar(twin, sanitize_active(active_raw.copy()))
    for g, w in zip(again, slow):
        assert np.array_equal(g, w)
    assert sharded.stats.delta(before_sh).as_dict() == \
        twin.stats.delta(before_tw).as_dict()


def test_neighbors_many_merge_is_sorted_and_grouped(factory):
    sharded = factory(n_shards=N_SHARDS, seed=SEED)
    sharded.insert_batch(_stream())
    src, dst, weight = sharded.neighbors_many(
        np.arange(128, dtype=np.int64))
    assert np.all(np.diff(src) >= 0), "sources not in sorted order"
    assert src.shape == dst.shape == weight.shape
    for v in np.unique(src).tolist():
        row = dst[src == v]
        d, w = sharded.neighbors(v)
        assert np.array_equal(row, d)


# --------------------------------------------------------------------- #
# hypothesis: shrink op interleavings against placement + content
# --------------------------------------------------------------------- #
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

N_PROP_VERTICES = 12

_ops = st.lists(
    st.tuples(st.sampled_from(["insert", "delete", "delete_vertex"]),
              st.integers(0, N_PROP_VERTICES - 1),
              st.integers(0, N_PROP_VERTICES - 1)),
    min_size=1, max_size=60,
)


@settings(max_examples=25, deadline=None)
@given(ops=_ops)
def test_sharded_interleavings_preserve_content(ops):
    """Random op interleavings against a dict model, shrunk to minimal
    failures; on top of content equality, every touched source must sit
    on exactly the shard the router assigns it (cross-shard placement)."""
    store = ShardedStore(ShardedConfig(n_shards=N_SHARDS, seed=SEED))
    try:
        model: dict[int, dict[int, float]] = {}
        for i, (op, a, b) in enumerate(ops):
            if op == "insert":
                w = float(i + 1)
                got = store.insert_edge(a, b, w)
                want = b not in model.get(a, {})
                model.setdefault(a, {})[b] = w
            elif op == "delete":
                got = store.delete_edge(a, b)
                want = model.get(a, {}).pop(b, None) is not None
            else:
                got = store.delete_vertex(a)
                want = len(model.pop(a, {}))
            assert got == want, f"op {i} ({op} {a} {b}): returned {got}"
            assert store.n_edges == sum(len(r) for r in model.values())
            for v, row in model.items():
                assert store.degree(v) == len(row), f"op {i}: degree({v})"
        # Content + placement, checked once over the final state.
        for v in range(N_PROP_VERTICES):
            row = model.get(v, {})
            if row:
                dsts, ws = store.neighbors(v)
                assert dict(zip(dsts.tolist(), ws.tolist())) == row
            owner = store._shard_of(v)
            for k in range(N_SHARDS):
                dsts, _, _ = store._call(k, ("neighbors", v))
                expect = len(row) if k == owner else 0
                assert dsts.shape[0] == expect, \
                    f"vertex {v}: shard {k} holds {dsts.shape[0]} edges"
        store.check_invariants()
    finally:
        store.close()
