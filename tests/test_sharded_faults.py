"""Sharded fault injection: worker kills, targeted replay, WAL retries.

The sharded service's failure story has three legs, each pinned here:

* a ``kill -9``-ed shard worker surfaces as the *typed*
  :class:`~repro.errors.ShardCrashError` (a :class:`ServiceError`) at
  the next store operation that touches the dead pipe — never a hang,
  never a bare ``EOFError``;
* recovery of a crashed sharded service replays **only the crashed
  shard's WAL tail** — the surviving shards' chains are fully covered by
  the checkpoint cursors — and the recovered digest equals the durable
  (uncrashed) prefix of the input stream, bit-for-bit;
* :class:`~repro.service.wal.ShardedWriteAheadLog` survives the
  service's verbatim append retry after a transient ``OSError``: shards
  that already landed their sub-record are skipped, so retries never
  duplicate rows (the resume-token mechanism).
"""

from __future__ import annotations

import os
import signal

import numpy as np
import pytest

from repro.core.config import ShardedConfig
from repro.core.graphtinker import GraphTinker
from repro.core.hashing import partition_of_array
from repro.core.sharded import ShardedStore
from repro.core.store import store_digest
from repro.errors import ReproError, ServiceError, ShardCrashError
from repro.service import GraphService, recover
from repro.service.wal import (
    OP_INSERT,
    ShardedWriteAheadLog,
    iter_records,
    list_segments,
    shard_prefix,
)
from repro.workloads import rmat_edges

N_SHARDS = 3
SEED = 7
CFG = ShardedConfig(n_shards=N_SHARDS, seed=SEED)
BATCH = 200


@pytest.fixture
def store():
    s = ShardedStore(CFG)
    yield s
    s.close()


def _digest_of_prefix(edges: np.ndarray) -> dict:
    ref = GraphTinker()
    if edges.shape[0]:
        ref.insert_batch(edges)
    return store_digest(ref)


# --------------------------------------------------------------------- #
# kill -9 a worker: typed error, no hang
# --------------------------------------------------------------------- #
def test_killed_worker_raises_typed_error(store):
    assert issubclass(ShardCrashError, ServiceError)
    edges = rmat_edges(7, 600, seed=3)
    store.insert_batch(edges)
    victim = 1
    os.kill(store.worker_pids[victim], signal.SIGKILL)
    with pytest.raises(ShardCrashError):
        store.insert_batch(rmat_edges(7, 600, seed=4))
    # Subsequent operations against the dead shard stay typed too.
    hit_victim = next(v for v in range(200) if store._shard_of(v) == victim)
    with pytest.raises(ShardCrashError):
        store.neighbors(hit_victim)
    # close() on a store with a dead worker must not raise.
    store.close()


def test_killed_worker_poisons_the_whole_store(store):
    """A crash mid-scatter leaves surviving shards' replies unread and
    the parent caches stale, so the store must fail *every* later
    operation with the same typed error — even ones routed to healthy
    shards — instead of serving desynced state."""
    edges = rmat_edges(7, 600, seed=5)
    store.insert_batch(edges)
    victim = 0
    os.kill(store.worker_pids[victim], signal.SIGKILL)
    with pytest.raises(ShardCrashError, match=r"shard 0"):
        store.insert_batch(edges)
    survivor_src = next(
        int(v) for v in np.unique(edges[:, 0])
        if store._shard_of(int(v)) != victim)
    with pytest.raises(ShardCrashError, match=r"shard 0"):
        store.neighbors(survivor_src)
    with pytest.raises(ShardCrashError, match=r"shard 0"):
        store.insert_edge(survivor_src, 1)
    # The uncharged parent-local degree cache still answers (reads no
    # pipe), and close() remains clean.
    assert store.degree(survivor_src) >= 0


# --------------------------------------------------------------------- #
# service crash + recovery: only the crashed shard's tail replays
# --------------------------------------------------------------------- #
def test_recovery_replays_only_crashed_shards_tail(tmp_path):
    edges = rmat_edges(8, 2400, seed=11)
    service, rec = GraphService.open(tmp_path, config=CFG,
                                     flush_interval=0.002)
    for start in range(0, edges.shape[0], BATCH):
        service.submit_insert(edges[start:start + BATCH]).wait(30)
    service.checkpoint()  # every shard's cursor now covers phase A

    # Phase B routes exclusively to the victim shard's vertices, so the
    # victim's chain is the only one with records past its cursor.
    victim = 2
    more = rmat_edges(8, 1200, seed=12)
    owned = more[partition_of_array(
        more[:, 0], N_SHARDS, SEED) == victim]
    assert owned.shape[0] >= 100, "stream never touched the victim shard"
    n_b = 0
    for start in range(0, owned.shape[0], 100):
        service.submit_insert(owned[start:start + 100]).wait(30)
        n_b += 1

    os.kill(rec.store.worker_pids[victim], signal.SIGKILL)
    with pytest.raises(ReproError):
        # WAL append lands (durable), then the store apply hits the dead
        # pipe and stops the flusher.
        service.submit_insert(owned[:50]).wait(30)
    assert isinstance(service.fatal_error, ShardCrashError)
    service.close()
    rec.store.close()

    rec2 = recover(tmp_path, config=CFG)
    try:
        assert rec2.n_shards == N_SHARDS
        # Only the victim's tail replayed: phase-B appends plus the
        # killed append (durable in the WAL, never applied).
        assert rec2.replayed_records == n_b + 1
        assert list_segments(tmp_path, prefix=shard_prefix(victim))
        # Digest equals the durable prefix: A + B + the killed batch.
        durable = np.vstack([edges, owned, owned[:50]])
        assert store_digest(rec2.store) == _digest_of_prefix(durable)
        assert rec2.fsck is not None and rec2.fsck.ok
    finally:
        rec2.store.close()

    # The recovered directory serves again — and the service can keep
    # appending to every shard.
    service2, rec3 = GraphService.open(tmp_path, config=CFG,
                                       flush_interval=0.002)
    try:
        service2.submit_insert(rmat_edges(8, 300, seed=13)).wait(30)
        assert service2.fatal_error is None
    finally:
        service2.close()
        rec3.store.close()


def test_post_recovery_digest_equals_uncrashed_prefix(tmp_path):
    """Crash with *no* checkpoint: every shard replays its whole chain
    and the result equals exactly the batches whose tickets resolved."""
    edges = rmat_edges(8, 1600, seed=21)
    service, rec = GraphService.open(tmp_path, config=CFG,
                                     flush_interval=0.002)
    durable_rows = 0
    for start in range(0, 1200, BATCH):
        service.submit_insert(edges[start:start + BATCH]).wait(30)
        durable_rows = start + BATCH
    os.kill(rec.store.worker_pids[0], signal.SIGKILL)
    with pytest.raises(ReproError):
        service.submit_insert(edges[1200:1400]).wait(30)
    service.close()
    rec.store.close()

    rec2 = recover(tmp_path, config=CFG)
    try:
        # The killed batch's WAL append preceded the failed apply, so the
        # durable prefix is every waited batch plus that one record.
        assert rec2.cum_edges == durable_rows + 200
        assert store_digest(rec2.store) == \
            _digest_of_prefix(edges[:rec2.cum_edges])
    finally:
        rec2.store.close()


# --------------------------------------------------------------------- #
# sharded WAL append retry: the resume token prevents duplication
# --------------------------------------------------------------------- #
def test_sharded_wal_retry_skips_landed_shards(tmp_path, monkeypatch):
    wal = ShardedWriteAheadLog(tmp_path, N_SHARDS, seed=SEED)
    edges = rmat_edges(7, 300, seed=9)
    shard_ids = partition_of_array(edges[:, 0], N_SHARDS, SEED)
    touched = sorted(set(shard_ids.tolist()))
    assert len(touched) == N_SHARDS, "stream must touch every shard"

    # First shard lands its sub-record, then the disk 'fails' once.
    real_append = type(wal.shards[1]).append
    fails = {"left": 1}

    def flaky(self, *args, **kwargs):
        if self.prefix == shard_prefix(1) and fails["left"]:
            fails["left"] -= 1
            raise OSError("injected transient append failure")
        return real_append(self, *args, **kwargs)

    monkeypatch.setattr(type(wal.shards[1]), "append", flaky)
    with pytest.raises(OSError):
        wal.append(OP_INSERT, edges)
    assert wal.shards[0].last_seq == 1          # landed before the fault
    assert wal.shards[1].last_seq == 0          # the faulted shard
    # The service retries the identical append verbatim: already-landed
    # shards are skipped, the rest complete, no row is duplicated.
    seq = wal.append(OP_INSERT, edges)
    assert [log.last_seq for log in wal.shards] == [1, 1, 1]
    assert seq == wal.last_seq == 3
    assert wal.cum_edges == edges.shape[0]
    wal.close()

    for k in touched:
        rows = sum(
            rec.edges.shape[0]
            for rec in iter_records(tmp_path, prefix=shard_prefix(k)))
        assert rows == int((shard_ids == k).sum()), f"shard {k} rows"


def test_sharded_wal_different_batch_does_not_resume(tmp_path, monkeypatch):
    """The resume token is per-batch: a *different* append after a fault
    must not skip shards that the faulted batch had landed."""
    wal = ShardedWriteAheadLog(tmp_path, N_SHARDS, seed=SEED)
    a = rmat_edges(7, 300, seed=9)
    b = rmat_edges(7, 300, seed=10)

    real_append = type(wal.shards[1]).append
    fails = {"left": 1}

    def flaky(self, *args, **kwargs):
        if self.prefix == shard_prefix(1) and fails["left"]:
            fails["left"] -= 1
            raise OSError("injected transient append failure")
        return real_append(self, *args, **kwargs)

    monkeypatch.setattr(type(wal.shards[1]), "append", flaky)
    with pytest.raises(OSError):
        wal.append(OP_INSERT, a)
    wal.append(OP_INSERT, b)  # different batch: full routing, no skips
    b_ids = partition_of_array(b[:, 0], N_SHARDS, SEED)
    for k in range(N_SHARDS):
        expect = int((b_ids == k).sum())
        if k == 0:  # shard 0 also carries batch a's landed sub-record
            a_ids = partition_of_array(a[:, 0], N_SHARDS, SEED)
            expect += int((a_ids == 0).sum())
        rows = sum(
            rec.edges.shape[0]
            for rec in iter_records(tmp_path, prefix=shard_prefix(k)))
        assert rows == expect, f"shard {k}"
    wal.close()
