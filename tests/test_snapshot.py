"""Unit tests for the CSR analytics snapshot (repro.engine.snapshot).

The engine-level on/off equivalence lives in the differential oracle
(``tests/test_differential.py::test_analytics_lockstep``); this module
tests the layer itself: sanitization, the charge-mirror contract at the
gather level, dirty-row patching granularity, invalidation (including
the fsck-repair hook), and the observability counters.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.obs as obs
from repro.core.config import GTConfig, StingerConfig
from repro.core.graphtinker import GraphTinker
from repro.engine.snapshot import (
    AnalyticsSnapshot,
    gather_active_scalar,
    sanitize_active,
)
from repro.stinger import Stinger


def _native(store, active):
    """The store's scalar gather with the snapshot detached: the truth.

    Returns ``(triple, charge_dict)`` and leaves the store's stats and
    snapshot attachment exactly as found.
    """
    snap = store.analytics_snapshot
    store.disable_snapshot()
    backup = store.stats.snapshot()
    triple = gather_active_scalar(store, sanitize_active(active))
    delta = store.stats.delta(backup)
    store.stats.reset()
    store.stats.merge(backup)
    store._analytics_snapshot = snap
    return triple, delta.as_dict()


def _snapshot_gather(store, active):
    backup = store.stats.snapshot()
    triple = store.analytics_snapshot.gather_active(active)
    delta = store.stats.delta(backup)
    store.stats.reset()
    store.stats.merge(backup)
    return triple, delta.as_dict()


def _assert_same(store, active, ctx=""):
    want, want_charge = _native(store, active)
    got, got_charge = _snapshot_gather(store, active)
    for i, name in enumerate(("src", "dst", "weight")):
        assert np.array_equal(got[i], want[i]), f"{ctx}: {name} differs"
    assert got_charge == want_charge, f"{ctx}: charges differ"


STORE_MAKERS = {
    "gt": lambda: GraphTinker(GTConfig(pagewidth=16, subblock=4,
                                       workblock=2, snapshot=True)),
    "gt-nosgh": lambda: GraphTinker(GTConfig(pagewidth=16, subblock=4,
                                             workblock=2, enable_sgh=False,
                                             snapshot=True)),
    "gt-nocal": lambda: GraphTinker(GTConfig(pagewidth=16, subblock=4,
                                             workblock=2, enable_cal=False,
                                             snapshot=True)),
    "stinger": lambda: Stinger(StingerConfig(edgeblock_size=4,
                                             snapshot=True)),
}


class TestSanitizeActive:
    def test_dedupes_and_sorts(self):
        out = sanitize_active(np.array([9, 3, 3, 9, 1]))
        assert out.tolist() == [1, 3, 9]

    def test_drops_negatives(self):
        out = sanitize_active(np.array([-5, -1, 0, 4]))
        assert out.tolist() == [0, 4]

    def test_empty_and_all_negative(self):
        assert sanitize_active(np.empty(0, dtype=np.int64)).size == 0
        assert sanitize_active(np.array([-3, -1])).size == 0

    def test_already_clean_is_identity(self):
        clean = np.array([0, 2, 7], dtype=np.int64)
        assert sanitize_active(clean).tolist() == clean.tolist()


@pytest.mark.parametrize("store_name", sorted(STORE_MAKERS))
class TestChargeMirror:
    def test_gather_matches_native_after_inserts(self, store_name, rng):
        store = STORE_MAKERS[store_name]()
        edges = np.column_stack([rng.integers(0, 30, 400),
                                 rng.integers(0, 50, 400)])
        store.insert_batch(edges)
        for active in (np.arange(30), np.array([0, 7, 29]),
                       np.array([100, 200]), np.arange(60)):
            _assert_same(store, active, f"{store_name} active={active[:4]}")

    def test_gather_matches_native_under_churn(self, store_name, rng):
        store = STORE_MAKERS[store_name]()
        for _ in range(3):
            edges = np.column_stack([rng.integers(0, 25, 150),
                                     rng.integers(0, 40, 150)])
            store.insert_batch(edges)
            store.delete_batch(edges[rng.integers(0, 150, 40)])
            store.insert_edge(3, 999, 7.5)     # single-edge mutator marks
            store.delete_edge(3, 999)
            _assert_same(store, np.arange(25), f"{store_name} churn")

    def test_weight_update_refreshes_row(self, store_name, rng):
        store = STORE_MAKERS[store_name]()
        store.insert_batch(np.array([[1, 2], [1, 3]]))
        store.analytics_snapshot.gather_active(np.array([1]))  # build
        store.insert_edge(1, 2, 42.0)  # duplicate: weight update only
        (_, _, w), _ = _snapshot_gather(store, np.array([1]))
        assert 42.0 in w.tolist()


class TestDirtyTracking:
    def test_steady_state_patches_only_touched_rows(self, rng):
        store = STORE_MAKERS["gt"]()
        edges = np.column_stack([rng.integers(0, 50, 500),
                                 rng.integers(0, 50, 500)])
        store.insert_batch(edges)
        snap = store.analytics_snapshot
        snap.gather_active(np.arange(50))  # first build: everything
        patched_after_build = snap.patched_rows
        store.insert_batch(np.array([[2, 97], [2, 98], [7, 99]]))
        snap.gather_active(np.arange(50))
        # only sources 2 and 7 were touched (dst ids are fresh vertices
        # on the GT side only as destinations — no new rows).
        assert snap.patched_rows == patched_after_build + 2

    def test_rebuild_counter_increments_once_per_change(self):
        store = STORE_MAKERS["stinger"]()
        store.insert_batch(np.array([[0, 1], [2, 3]]))
        snap = store.analytics_snapshot
        snap.gather_active(np.array([0]))
        builds = snap.rebuilds
        snap.gather_active(np.array([2]))  # clean: no rebuild
        assert snap.rebuilds == builds
        store.insert_edge(0, 9)
        snap.gather_active(np.array([0]))
        assert snap.rebuilds == builds + 1

    def test_new_vertices_extend_rows(self):
        store = STORE_MAKERS["gt"]()
        store.insert_batch(np.array([[0, 1]]))
        snap = store.analytics_snapshot
        snap.gather_active(np.array([0]))
        n = snap.n_rows
        store.insert_batch(np.array([[500, 1], [501, 2]]))
        _assert_same(store, np.array([0, 500, 501]), "grown rows")
        assert snap.n_rows == n + 2

    def test_invalidate_forces_full_remeasure(self, rng):
        store = STORE_MAKERS["gt"]()
        edges = np.column_stack([rng.integers(0, 20, 200),
                                 rng.integers(0, 20, 200)])
        store.insert_batch(edges)
        snap = store.analytics_snapshot
        snap.gather_active(np.arange(20))
        patched = snap.patched_rows
        snap.invalidate()
        _assert_same(store, np.arange(20), "post-invalidate")
        assert snap.patched_rows == patched + snap.n_rows


class TestFsckRepairInvalidates:
    def test_repair_rebuilt_store_still_mirrors(self, rng):
        from repro.service import StoreCorruptor

        store = GraphTinker(GTConfig(snapshot=True))
        edges = np.column_stack([rng.integers(0, 30, 400),
                                 rng.integers(0, 30, 400)])
        store.insert_batch(edges)
        store.analytics_snapshot.gather_active(np.arange(30))  # warm
        corruptor = StoreCorruptor(store, seed=7)
        corruptor.corrupt_random(3)
        repair = store.fsck(repair=True)
        assert repair.ok
        _assert_same(store, np.arange(30), "post-repair")


class TestServesFull:
    def test_cal_backed_gt_keeps_native_full_load(self):
        store = STORE_MAKERS["gt"]()
        assert store.analytics_snapshot.serves_full is False

    def test_calless_gt_and_stinger_serve_full(self):
        assert STORE_MAKERS["gt-nocal"]().analytics_snapshot.serves_full
        assert STORE_MAKERS["stinger"]().analytics_snapshot.serves_full


class TestAttachment:
    def test_enable_disable_roundtrip(self):
        store = GraphTinker(GTConfig())
        assert store.analytics_snapshot is None
        snap = store.enable_snapshot()
        assert store.analytics_snapshot is snap
        assert store.enable_snapshot() is snap  # idempotent
        store.disable_snapshot()
        assert store.analytics_snapshot is None

    def test_config_flag_attaches(self):
        assert GraphTinker(GTConfig(snapshot=True)).analytics_snapshot
        assert Stinger(StingerConfig(snapshot=True)).analytics_snapshot
        assert GraphTinker(GTConfig()).analytics_snapshot is None

    def test_attach_to_populated_store(self, rng):
        store = GraphTinker(GTConfig(pagewidth=16, subblock=4, workblock=2))
        edges = np.column_stack([rng.integers(0, 20, 200),
                                 rng.integers(0, 20, 200)])
        store.insert_batch(edges)
        store.enable_snapshot()
        _assert_same(store, np.arange(20), "late attach")


class TestObsCounters:
    def test_counters_published_when_enabled(self):
        store = GraphTinker(GTConfig(snapshot=True))
        store.insert_batch(np.array([[0, 1], [2, 3]]))
        registry = obs.get_registry()
        registry.reset()
        obs.enable()
        try:
            snap = store.analytics_snapshot
            snap.gather_active(np.array([0]))
            store.insert_edge(0, 9)
            snap.gather_active(np.array([0, 2]))
        finally:
            obs.disable()
        assert registry.counter("engine.snapshot.hits").value == 2
        assert registry.counter("engine.snapshot.rebuilds").value >= 1
        assert registry.counter("engine.snapshot.patched_rows").value >= 1

    def test_counters_silent_when_disabled(self):
        registry = obs.get_registry()
        registry.reset()
        store = Stinger(StingerConfig(snapshot=True))
        store.insert_batch(np.array([[0, 1]]))
        store.analytics_snapshot.gather_active(np.array([0]))
        assert "engine.snapshot.hits" not in registry
