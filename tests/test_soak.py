"""Soak test: a long mixed workload at the paper's default geometry.

One sustained session exercising every operation class — weighted
inserts, duplicate updates, point deletes, vertex deletes, churn,
interleaved analytics — on GraphTinker with the paper's PW64/SB8/WB4
configuration, verified step-by-step against the reference model and
against networkx at the end.  This is the closest thing to a production
shake-down the suite has.
"""

import networkx as nx
import numpy as np
import pytest

from repro import GraphTinker, GTConfig
from repro.engine import BFS, HybridEngine
from tests.reference import ReferenceGraph, assert_store_matches

# Tier 2: deselected by the default pytest run (see pyproject.toml);
# run with `pytest -m soak` or `-m ""`.
pytestmark = pytest.mark.soak


@pytest.mark.parametrize("compact", [False, True])
def test_soak_mixed_session(compact):
    rng = np.random.default_rng(1234)
    gt = GraphTinker(GTConfig(compact_on_delete=compact))
    ref = ReferenceGraph()

    for phase in range(6):
        # --- update burst ------------------------------------------------
        for _ in range(3000):
            roll = rng.random()
            s = int(rng.integers(0, 300))
            d = int(rng.integers(0, 1500))
            if roll < 0.62:
                w = float(rng.uniform(0.1, 5.0))
                assert gt.insert_edge(s, d, w) == ref.insert_edge(s, d, w)
            elif roll < 0.92:
                assert gt.delete_edge(s, d) == ref.delete_edge(s, d)
            else:
                expected = ref.degree(s)
                ref.adj.pop(s, None)
                assert gt.delete_vertex(s) == expected
        gt.check_invariants()
        assert gt.n_edges == ref.n_edges

        # --- interleaved analytics ---------------------------------------
        if ref.n_edges:
            some_src = next(iter(ref.adj))
            engine = HybridEngine(gt, BFS(), policy="hybrid")
            engine.reset(roots=[some_src])
            engine.compute()
            G = nx.DiGraph()
            G.add_edges_from(ref.edge_set())
            expected_levels = nx.single_source_shortest_path_length(G, some_src)
            for v, level in list(expected_levels.items())[:200]:
                assert engine.value_of(v) == level, (phase, v)

    assert_store_matches(gt, ref)
