"""Tests for the SSWP (widest path) extension program."""

import networkx as nx
import numpy as np
import pytest

from repro import GraphTinker, GTConfig
from repro.engine import HybridEngine
from repro.engine.algorithms import SSWP
from repro.workloads import rmat_edges


def widest_paths_reference(edges, weights, root):
    """Dijkstra-style max-bottleneck reference on a DiGraph."""
    adj: dict[int, dict[int, float]] = {}
    for (s, d), w in zip(edges.tolist(), weights.tolist()):
        adj.setdefault(s, {})[d] = w  # last weight wins (store semantics)
    import heapq

    width = {root: float("inf")}
    heap = [(-float("inf"), root)]
    done = set()
    while heap:
        neg_w, v = heapq.heappop(heap)
        if v in done:
            continue
        done.add(v)
        for u, w in adj.get(v, {}).items():
            cand = min(width[v], w)
            if cand > width.get(u, 0.0):
                width[u] = cand
                heapq.heappush(heap, (-cand, u))
    return width


@pytest.fixture(scope="module")
def graph():
    edges = rmat_edges(9, 2500, seed=77)
    edges = edges[edges[:, 0] != edges[:, 1]]
    weights = np.random.default_rng(3).uniform(0.5, 10.0, edges.shape[0])
    return edges, weights


class TestProgramUnits:
    def test_messages_are_bottlenecks(self):
        p = SSWP()
        msgs = p.edge_messages(np.array([5.0, 2.0]), np.array([3.0, 7.0]))
        assert msgs.tolist() == [3.0, 2.0]

    def test_root_seeded_infinite(self):
        p = SSWP()
        values = p.init_state(3)
        p.seed(values, np.array([1]))
        assert np.isinf(values[1]) and values[0] == 0.0

    def test_apply_commits_increases_only(self):
        p = SSWP()
        values = np.array([3.0, 5.0])
        vtemp = np.array([4.0, 2.0])
        changed = p.apply(values, vtemp)
        assert changed.tolist() == [0]
        assert values.tolist() == [4.0, 5.0]

    def test_filter_drops_unreached(self):
        p = SSWP()
        assert p.message_filter(np.array([0.0, 1.0])).tolist() == [False, True]


@pytest.mark.parametrize("policy", ["full", "incremental", "hybrid"])
class TestAgainstReference:
    def test_matches_max_bottleneck_dijkstra(self, graph, policy):
        edges, weights = graph
        root = int(edges[0, 0])
        store = GraphTinker(GTConfig(pagewidth=16, subblock=4, workblock=2))
        store.insert_batch(edges, weights)
        engine = HybridEngine(store, SSWP(), policy=policy)
        engine.reset(roots=[root])
        engine.compute()
        expected = widest_paths_reference(edges, weights, root)
        for v, w in expected.items():
            assert engine.value_of(v) == pytest.approx(w), v
        # unreached vertices stay at width 0
        for v in range(engine.values.shape[0]):
            if v not in expected:
                assert engine.value_of(v) == 0.0


class TestDynamic:
    def test_new_edges_only_widen(self, graph):
        edges, weights = graph
        root = int(edges[0, 0])
        store = GraphTinker(GTConfig(pagewidth=16, subblock=4, workblock=2))
        engine = HybridEngine(store, SSWP(), policy="hybrid")
        engine.reset(roots=[root])
        half = edges.shape[0] // 2
        store.insert_batch(edges[:half], weights[:half])
        engine.mark_inconsistent(edges[:half])
        engine.compute()
        before = engine.values.copy()
        store.insert_batch(edges[half:], weights[half:])
        engine.mark_inconsistent(edges[half:])
        engine.compute()
        n = before.shape[0]
        assert (engine.values[:n] >= before).all()
