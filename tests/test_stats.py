"""Unit tests for AccessStats instrumentation bookkeeping."""

import pytest

from repro.core.stats import AccessStats, ProbeHistogram


class TestAccessStats:
    def test_starts_zeroed(self):
        s = AccessStats()
        assert all(v == 0 for v in s.as_dict().values())

    def test_snapshot_is_independent(self):
        s = AccessStats()
        s.workblock_fetches = 3
        snap = s.snapshot()
        s.workblock_fetches = 10
        assert snap.workblock_fetches == 3

    def test_delta(self):
        s = AccessStats()
        s.random_block_reads = 5
        before = s.snapshot()
        s.random_block_reads = 12
        s.rhh_swaps = 2
        d = s.delta(before)
        assert d.random_block_reads == 7
        assert d.rhh_swaps == 2
        assert d.workblock_fetches == 0

    def test_merge_accumulates(self):
        a, b = AccessStats(), AccessStats()
        a.cells_scanned = 4
        b.cells_scanned = 6
        b.hash_lookups = 1
        a.merge(b)
        assert a.cells_scanned == 10
        assert a.hash_lookups == 1

    def test_reset(self):
        s = AccessStats()
        s.seq_block_reads = 9
        s.reset()
        assert s.seq_block_reads == 0

    def test_total_block_accesses(self):
        s = AccessStats()
        s.workblock_fetches = 1
        s.workblock_writebacks = 2
        s.branch_descents = 3
        s.random_block_reads = 4
        s.seq_block_reads = 5
        s.cal_updates = 6
        assert s.total_block_accesses == 21
        s.cells_scanned = 100  # CPU-side: not a block access
        assert s.total_block_accesses == 21

    def test_delta_of_fresh_snapshot_is_all_zero(self):
        s = AccessStats()
        snap = s.snapshot()
        assert all(v == 0 for v in s.delta(snap).as_dict().values())

    def test_snapshot_delta_merge_round_trip(self):
        """merge(snapshot) + merge(delta) reconstructs the current counts."""
        s = AccessStats()
        s.workblock_fetches = 3
        snap = s.snapshot()
        s.workblock_fetches = 11
        s.cal_updates = 2
        rebuilt = AccessStats()
        rebuilt.merge(snap)
        rebuilt.merge(s.delta(snap))
        assert rebuilt.as_dict() == s.as_dict()

    def test_add_returns_merged_copy(self):
        a, b = AccessStats(), AccessStats()
        a.rhh_swaps = 2
        b.rhh_swaps = 3
        b.hash_lookups = 1
        c = a + b
        assert c.rhh_swaps == 5 and c.hash_lookups == 1
        assert a.rhh_swaps == 2 and b.rhh_swaps == 3  # operands untouched

    def test_iadd_accumulates_in_place(self):
        a, b = AccessStats(), AccessStats()
        a.cells_scanned = 4
        b.cells_scanned = 6
        a += b
        assert a.cells_scanned == 10
        assert b.cells_scanned == 6

    def test_sum_with_start(self):
        deltas = []
        for n in (1, 2, 3):
            d = AccessStats()
            d.edges_inserted = n
            deltas.append(d)
        total = sum(deltas, start=AccessStats())
        assert total.edges_inserted == 6

    def test_add_rejects_other_types(self):
        with pytest.raises(TypeError):
            AccessStats() + 1

    def test_reset_then_merge_restores_snapshot(self):
        """The audit-path idiom: reset + merge(snapshot) is a restore."""
        s = AccessStats()
        s.edges_inserted = 7
        s.rhh_swaps = 3
        snap = s.snapshot()
        s.edges_inserted = 99
        s.reset()
        s.merge(snap)
        assert s.as_dict() == snap.as_dict()


class TestProbeHistogram:
    def test_mean_and_max(self):
        h = ProbeHistogram()
        for p in (0, 1, 2, 5):
            h.record(p)
        assert h.count == 4
        assert h.mean == 2.0
        assert h.max_probe == 5

    def test_empty_mean(self):
        assert ProbeHistogram().mean == 0.0

    def test_reset(self):
        h = ProbeHistogram()
        h.record(4)
        h.reset()
        assert h.count == 0 and h.max_probe == 0

    def test_reset_restores_empty_mean(self):
        h = ProbeHistogram()
        h.record(4)
        h.reset()
        assert h.mean == 0.0

    def test_record_after_reset_starts_fresh(self):
        h = ProbeHistogram()
        for p in (9, 9, 9):
            h.record(p)
        h.reset()
        h.record(1)
        assert h.count == 1
        assert h.mean == 1.0
        assert h.max_probe == 1

    def test_max_tracks_only_increases(self):
        h = ProbeHistogram()
        for p in (5, 2, 4):
            h.record(p)
        assert h.max_probe == 5
        assert h.total == 11
