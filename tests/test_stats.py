"""Unit tests for AccessStats instrumentation bookkeeping."""

from repro.core.stats import AccessStats, ProbeHistogram


class TestAccessStats:
    def test_starts_zeroed(self):
        s = AccessStats()
        assert all(v == 0 for v in s.as_dict().values())

    def test_snapshot_is_independent(self):
        s = AccessStats()
        s.workblock_fetches = 3
        snap = s.snapshot()
        s.workblock_fetches = 10
        assert snap.workblock_fetches == 3

    def test_delta(self):
        s = AccessStats()
        s.random_block_reads = 5
        before = s.snapshot()
        s.random_block_reads = 12
        s.rhh_swaps = 2
        d = s.delta(before)
        assert d.random_block_reads == 7
        assert d.rhh_swaps == 2
        assert d.workblock_fetches == 0

    def test_merge_accumulates(self):
        a, b = AccessStats(), AccessStats()
        a.cells_scanned = 4
        b.cells_scanned = 6
        b.hash_lookups = 1
        a.merge(b)
        assert a.cells_scanned == 10
        assert a.hash_lookups == 1

    def test_reset(self):
        s = AccessStats()
        s.seq_block_reads = 9
        s.reset()
        assert s.seq_block_reads == 0

    def test_total_block_accesses(self):
        s = AccessStats()
        s.workblock_fetches = 1
        s.workblock_writebacks = 2
        s.branch_descents = 3
        s.random_block_reads = 4
        s.seq_block_reads = 5
        s.cal_updates = 6
        assert s.total_block_accesses == 21
        s.cells_scanned = 100  # CPU-side: not a block access
        assert s.total_block_accesses == 21

    def test_reset_then_merge_restores_snapshot(self):
        """The audit-path idiom: reset + merge(snapshot) is a restore."""
        s = AccessStats()
        s.edges_inserted = 7
        s.rhh_swaps = 3
        snap = s.snapshot()
        s.edges_inserted = 99
        s.reset()
        s.merge(snap)
        assert s.as_dict() == snap.as_dict()


class TestProbeHistogram:
    def test_mean_and_max(self):
        h = ProbeHistogram()
        for p in (0, 1, 2, 5):
            h.record(p)
        assert h.count == 4
        assert h.mean == 2.0
        assert h.max_probe == 5

    def test_empty_mean(self):
        assert ProbeHistogram().mean == 0.0

    def test_reset(self):
        h = ProbeHistogram()
        h.record(4)
        h.reset()
        assert h.count == 0 and h.max_probe == 0
