"""Unit + property tests for the STINGER baseline."""

import numpy as np
import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro import StingerConfig
from repro.stinger import Stinger
from repro.errors import VertexNotFoundError
from tests.reference import ReferenceGraph, assert_store_matches


class TestBasicOperations:
    def test_insert_and_query(self, stinger_config):
        st_ = Stinger(stinger_config)
        assert st_.insert_edge(1, 2, 3.0)
        assert st_.has_edge(1, 2)
        assert st_.edge_weight(1, 2) == 3.0

    def test_duplicate_updates_weight(self, stinger_config):
        st_ = Stinger(stinger_config)
        st_.insert_edge(1, 2, 1.0)
        assert not st_.insert_edge(1, 2, 9.0)
        assert st_.edge_weight(1, 2) == 9.0
        assert st_.n_edges == 1

    def test_delete_flags_slot(self, stinger_config):
        st_ = Stinger(stinger_config)
        st_.insert_edge(1, 2)
        assert st_.delete_edge(1, 2)
        assert not st_.has_edge(1, 2)
        assert st_.n_edges == 0

    def test_deleted_slot_reused(self, stinger_config):
        st_ = Stinger(stinger_config)
        for d in range(stinger_config.edgeblock_size):
            st_.insert_edge(0, d)
        blocks = st_.pool.n_used
        st_.delete_edge(0, 0)
        st_.insert_edge(0, 99)
        assert st_.pool.n_used == blocks  # reused the flagged slot

    def test_chain_growth(self, stinger_config):
        st_ = Stinger(stinger_config)
        n = stinger_config.edgeblock_size * 5
        for d in range(n):
            st_.insert_edge(0, d)
        assert st_.pool.n_used == 5
        assert st_.degree(0) == n

    def test_neighbors_unknown_vertex(self, stinger_config):
        with pytest.raises(VertexNotFoundError):
            Stinger(stinger_config).neighbors(3)

    def test_insert_batch_shape_check(self, stinger_config):
        with pytest.raises(ValueError):
            Stinger(stinger_config).insert_batch(np.zeros((2, 3), dtype=np.int64))


class TestProbeBehaviour:
    def test_chain_traversal_counts_block_reads(self, stinger_config):
        """The defining cost: inserts traverse the whole chain."""
        st_ = Stinger(stinger_config)
        n = stinger_config.edgeblock_size * 4  # 4 chained blocks
        for d in range(n):
            st_.insert_edge(0, d)
        st_.stats.reset()
        st_.insert_edge(0, 9999)
        # must have visited all 4 blocks to rule out a duplicate
        assert st_.stats.random_block_reads == 4

    def test_probe_cost_grows_with_degree(self, stinger_config):
        st_ = Stinger(stinger_config)
        costs = []
        for d in range(64):
            before = st_.stats.random_block_reads
            st_.insert_edge(0, d)
            costs.append(st_.stats.random_block_reads - before)
        assert costs[-1] > costs[0]  # O(n) probe growth


class TestRetrieval:
    def test_edge_arrays_roundtrip(self, stinger_config, random_edges):
        st_ = Stinger(stinger_config)
        st_.insert_batch(random_edges)
        src, dst, _ = st_.edge_arrays()
        got = set(zip(src.tolist(), dst.tolist()))
        expected = {(s, d) for s, d in random_edges.tolist()}
        assert got == expected

    def test_edges_iterator(self, stinger_config):
        st_ = Stinger(stinger_config)
        st_.insert_edge(2, 3, 4.0)
        assert list(st_.edges()) == [(2, 3, 4.0)]

    def test_analytics_edges_alias(self, stinger_config):
        st_ = Stinger(stinger_config)
        st_.insert_edge(5, 6)
        src, dst, _ = st_.analytics_edges()
        assert (src.tolist(), dst.tolist()) == ([5], [6])


class TestAgainstReference:
    def test_randomized_mixed_workload(self, stinger_config, rng):
        st_ = Stinger(stinger_config)
        ref = ReferenceGraph()
        for _ in range(4000):
            s = int(rng.integers(0, 40))
            d = int(rng.integers(0, 120))
            if rng.random() < 0.65:
                w = float(rng.random())
                assert st_.insert_edge(s, d, w) == ref.insert_edge(s, d, w)
            else:
                assert st_.delete_edge(s, d) == ref.delete_edge(s, d)
        st_.check_invariants()
        assert_store_matches(st_, ref)


class _StingerMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.st = Stinger(StingerConfig(edgeblock_size=3, initial_vertices=2))
        self.ref = ReferenceGraph()

    @rule(src=st.integers(0, 10), dst=st.integers(0, 30),
          weight=st.floats(0, 5, allow_nan=False))
    def insert(self, src, dst, weight):
        assert self.st.insert_edge(src, dst, weight) == self.ref.insert_edge(src, dst, weight)

    @rule(src=st.integers(0, 10), dst=st.integers(0, 30))
    def delete(self, src, dst):
        assert self.st.delete_edge(src, dst) == self.ref.delete_edge(src, dst)

    @rule(src=st.integers(0, 10), dst=st.integers(0, 30))
    def query(self, src, dst):
        assert self.st.has_edge(src, dst) == self.ref.has_edge(src, dst)

    @invariant()
    def counts_match(self):
        assert self.st.n_edges == self.ref.n_edges

    def teardown(self):
        self.st.check_invariants()
        assert_store_matches(self.st, self.ref)


class TestStingerMachine(_StingerMachine.TestCase):
    pass


TestStingerMachine.settings = settings(max_examples=40, stateful_step_count=60)
