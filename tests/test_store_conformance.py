"""Backend conformance suite: every registered store, one contract.

Each test here is parameterized over **every** backend registered in
:mod:`repro.core.store` (one fixture list — ``backend_names()``), so a
new backend registers once and inherits the whole suite: mutator
semantics (insert/delete/duplicate/self-loop), degree and
``neighbors_many`` agreement against the dict reference, empty-store and
max-vertex edge cases, snapshot attach/detach round-trips, checkpoint /
restore identity, fsck, and batch-vs-scalar equivalence.

The suite asserts the *documented* contract of
``docs/store_protocol.md`` — not any backend's incidental behaviour —
which is exactly what lets the differential oracle treat backends as
interchangeable.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.core.store import (
    STORE_PROTOCOL_MEMBERS,
    Store,
    backend_names,
    create_store,
    register_backend,
    store_digest,
    validate_store,
)
from repro.errors import StoreProtocolError, VertexNotFoundError
from tests.reference import ReferenceGraph

BACKENDS = backend_names()


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


def _stream(seed: int, n: int = 400, n_vertices: int = 64):
    """A duplicate-heavy seeded edge stream with weights."""
    rng = np.random.default_rng(seed)
    edges = np.column_stack([
        rng.integers(0, n_vertices, n),
        rng.integers(0, n_vertices // 4, n),
    ]).astype(np.int64)
    return edges, rng.random(n)


def _ref_digest(ref: ReferenceGraph) -> dict:
    """The dict reference hashed exactly like ``store_digest``."""
    items = sorted(ref.weighted_edges().items())
    src = np.array([s for (s, _), _ in items], dtype=np.int64)
    dst = np.array([d for (_, d), _ in items], dtype=np.int64)
    weight = np.array([w for _, w in items], dtype=np.float64)
    h = hashlib.sha256()
    h.update(src.tobytes())
    h.update(dst.tobytes())
    h.update(weight.tobytes())
    return {"sha256": h.hexdigest(), "n_edges": int(src.shape[0])}


class TestProtocolSurface:
    def test_backend_is_protocol_complete(self, backend):
        store = create_store(backend)
        validate_store(store, name=backend)
        assert isinstance(store, Store)
        for member in STORE_PROTOCOL_MEMBERS:
            assert hasattr(store, member), f"{backend} lacks {member}"

    def test_incomplete_backend_raises_typed_error(self):
        class Incomplete:
            """Has a few members, misses most of the contract."""

            n_edges = 0

            def insert_edge(self, src, dst, weight=1.0):
                return True

        with pytest.raises(StoreProtocolError) as err:
            validate_store(Incomplete(), name="incomplete")
        # The error names what is missing, so a backend author can act.
        assert "delete_edge" in str(err.value)
        assert "neighbors_many" in str(err.value)

        register_backend("conftest-incomplete", lambda config=None, *,
                         kernel=None, snapshot=None: Incomplete())
        try:
            with pytest.raises(StoreProtocolError):
                create_store("conftest-incomplete")
        finally:
            # Keep the registry clean for the other parameterized tests.
            from repro.core import store as store_mod

            store_mod._BACKENDS.pop("conftest-incomplete", None)

    def test_duplicate_registration_refused(self):
        with pytest.raises(ValueError):
            register_backend("graphtinker", lambda config=None, *,
                             kernel=None, snapshot=None: None)

    def test_unknown_backend_name(self):
        with pytest.raises(ValueError):
            create_store("no-such-backend")


class TestMutatorSemantics:
    def test_insert_delete_dup_selfloop(self, backend):
        store = create_store(backend)
        assert store.insert_edge(1, 2, 0.5) is True
        assert store.insert_edge(1, 2, 0.75) is False  # dup: weight update
        assert store.edge_weight(1, 2) == pytest.approx(0.75)
        assert store.n_edges == 1

        assert store.insert_edge(3, 3, 1.5) is True  # self-loop is ordinary
        assert store.has_edge(3, 3)
        assert store.degree(3) == 1

        assert store.delete_edge(1, 2) is True
        assert store.delete_edge(1, 2) is False      # double delete
        assert store.delete_edge(99, 0) is False     # unknown source
        assert store.delete_edge(1, 99) is False     # unknown destination
        assert store.n_edges == 1                     # the self-loop survives

    def test_negative_ids_rejected_on_insert_miss_on_delete(self, backend):
        store = create_store(backend)
        with pytest.raises(ValueError):
            store.insert_edge(-1, 2)
        with pytest.raises(ValueError):
            store.insert_edge(2, -1)
        with pytest.raises(ValueError):
            store.insert_batch(np.array([[0, 1], [-3, 4]], dtype=np.int64))
        # Reads and deletes treat negative ids as a miss — they must not
        # alias the stores' negative EMPTY/TOMBSTONE cell sentinels, and
        # must not wrap around via Python negative indexing.
        store.insert_edge(3, 5)
        for bad_src, bad_dst in [(-1, 2), (3, -1), (3, -2), (-1, -1)]:
            assert store.delete_edge(bad_src, bad_dst) is False
            assert store.has_edge(bad_src, bad_dst) is False
            assert store.edge_weight(bad_src, bad_dst) is None
        assert store.degree(-1) == 0
        assert store.n_edges == 1
        store.check_invariants()

    def test_batches_equal_scalar_loop(self, backend):
        edges, weights = _stream(7)
        batched = create_store(backend)
        scalar = create_store(backend)
        got = batched.insert_batch(edges, weights)
        want = sum(scalar.insert_edge(s, d, w) for (s, d), w
                   in zip(edges.tolist(), weights.tolist()))
        assert got == want
        assert store_digest(batched) == store_digest(scalar)

        dels = edges[::2]
        got = batched.delete_batch(dels)
        want = sum(scalar.delete_edge(s, d) for s, d in dels.tolist())
        assert got == want
        assert store_digest(batched) == store_digest(scalar)

    def test_delete_vertex_drops_all_out_edges(self, backend):
        store = create_store(backend)
        for d in (1, 2, 3, 4, 5):
            store.insert_edge(7, d)
        store.insert_edge(2, 7)
        assert store.delete_vertex(7) == 5
        assert store.degree(7) == 0
        assert store.n_edges == 1        # in-edges of 7 are untouched
        assert store.delete_vertex(7) == 0
        assert store.delete_vertex(99_999) == 0


class TestQueriesAgainstReference:
    def test_degree_neighbors_weights_match_dict_reference(self, backend):
        edges, weights = _stream(23)
        store = create_store(backend)
        ref = ReferenceGraph()
        store.insert_batch(edges, weights)
        for (s, d), w in zip(edges.tolist(), weights.tolist()):
            ref.insert_edge(s, d, w)
        dels = edges[1::3]
        store.delete_batch(dels)
        for s, d in dels.tolist():
            ref.delete_edge(s, d)

        assert store.n_edges == ref.n_edges
        for v in range(70):
            assert store.degree(v) == ref.degree(v), f"degree({v})"
            want = ref.neighbors(v)
            try:
                dsts, ws = store.neighbors(v)
            except VertexNotFoundError:
                assert not want, f"neighbors({v}) raised with edges present"
                continue
            assert set(dsts.tolist()) == want, f"neighbors({v})"
            assert dsts.shape[0] == len(set(dsts.tolist())), \
                f"duplicate neighbors for {v}"
            for d, w in zip(dsts.tolist(), ws.tolist()):
                assert w == pytest.approx(ref.edge_weight(v, d))
        assert store_digest(store) == _ref_digest(ref)

    def test_neighbors_many_sanitizes_and_matches_scalar(self, backend):
        from repro.engine.snapshot import gather_active_scalar, sanitize_active

        edges, weights = _stream(3)
        store = create_store(backend)
        twin = create_store(backend)
        store.insert_batch(edges, weights)
        twin.insert_batch(edges, weights)
        # Duplicates, negatives, and out-of-range ids in one frontier.
        active = np.array([5, 5, -1, 2, 63, 2, 1_000], dtype=np.int64)
        src, dst, w = store.neighbors_many(active)
        src2, dst2, w2 = gather_active_scalar(twin, sanitize_active(active))
        assert np.array_equal(src, src2)
        assert np.array_equal(dst, dst2)
        assert np.array_equal(w, w2)
        assert store.stats.as_dict() == twin.stats.as_dict()

    def test_edges_iterator_consistent_with_edge_arrays(self, backend):
        edges, weights = _stream(11, n=120)
        store = create_store(backend)
        store.insert_batch(edges, weights)
        from_iter = {(s, d): w for s, d, w in store.edges()}
        src, dst, w = store.edge_arrays()
        src = store.original_ids(src)
        from_arrays = dict(zip(zip(src.tolist(), dst.tolist()), w.tolist()))
        assert from_iter == from_arrays
        assert len(from_arrays) == store.n_edges


class TestEdgeCases:
    def test_empty_store(self, backend):
        store = create_store(backend)
        assert store.n_edges == 0
        assert store.degree(0) == 0
        assert not store.has_edge(0, 1)
        assert store.edge_weight(0, 1) is None
        src, dst, w = store.edge_arrays()
        assert src.size == dst.size == w.size == 0
        src, dst, w = store.neighbors_many(np.array([0, 5], dtype=np.int64))
        assert src.size == 0
        assert list(store.edges()) == []
        store.check_invariants()
        assert store.fsck(level="full").ok

    def test_empty_digest_is_backend_independent(self):
        digests = {name: store_digest(create_store(name))["sha256"]
                   for name in BACKENDS}
        assert len(set(digests.values())) == 1, digests

    def test_max_vertex_growth(self, backend):
        store = create_store(backend)
        big = 4_099  # far beyond every backend's initial allocation
        assert store.insert_edge(big, 1) is True
        assert store.insert_edge(1, big) is True
        assert store.degree(big) == 1
        assert store.n_vertices >= 1
        dsts, _ = store.neighbors(big)
        assert dsts.tolist() == [1]
        assert store.delete_edge(big, 1) is True
        assert store.degree(big) == 0
        store.check_invariants()


class TestSnapshotRoundTrip:
    def test_attach_detach_preserves_content_and_results(self, backend):
        edges, weights = _stream(42)
        plain = create_store(backend)
        snapped = create_store(backend)
        plain.insert_batch(edges, weights)
        snapped.insert_batch(edges, weights)

        assert snapped.analytics_snapshot is None
        snap = snapped.enable_snapshot()
        assert snapped.enable_snapshot() is snap  # idempotent attach
        assert snapped.analytics_snapshot is snap

        active = np.arange(0, 64, dtype=np.int64)
        before_p = plain.stats.snapshot()
        before_s = snapped.stats.snapshot()
        triple_p = plain.neighbors_many(active)
        triple_s = snapped.neighbors_many(active)
        for a, b in zip(triple_p, triple_s):
            assert np.array_equal(a, b)
        # The charge mirror: identical modeled deltas, snapshot on or off.
        assert (plain.stats.delta(before_p).as_dict()
                == snapped.stats.delta(before_s).as_dict())
        assert store_digest(plain) == store_digest(snapped)

        snapped.disable_snapshot()
        assert snapped.analytics_snapshot is None
        # Mutations after detach must not notify a dead view.
        snapped.insert_edge(1, 60)
        snapped.delete_edge(1, 60)
        assert store_digest(plain) == store_digest(snapped)

    def test_snapshot_config_flag_matches_manual_attach(self, backend):
        store = create_store(backend, snapshot=True)
        assert store.analytics_snapshot is not None
        edges, weights = _stream(9, n=100)
        store.insert_batch(edges, weights)
        twin = create_store(backend)
        twin.insert_batch(edges, weights)
        assert store_digest(store) == store_digest(twin)


class TestPersistenceRoundTrip:
    def test_checkpoint_restore_identity(self, backend, tmp_path):
        from repro.workloads.persistence import restore_store, save_snapshot

        edges, weights = _stream(5)
        store = create_store(backend)
        store.insert_batch(edges, weights)
        store.delete_batch(edges[::4])
        path = tmp_path / "conformance.npz"
        n = save_snapshot(store, path)
        assert n == store.n_edges

        restored = restore_store(path)
        # v2 snapshots embed the writer's config: the restored store is
        # the same backend class with the same configuration.
        assert type(restored) is type(store)
        assert restored.config == store.config
        assert store_digest(restored) == store_digest(store)
        restored.check_invariants()

    def test_fsck_clean_and_repair_noop(self, backend):
        edges, weights = _stream(31)
        store = create_store(backend)
        store.insert_batch(edges, weights)
        report = store.fsck(level="full")
        assert report.ok, report.violations
        digest = store_digest(store)
        repair = store.fsck(level="full", repair=True)
        assert repair.ok
        assert store_digest(store) == digest  # repairing a clean store is a no-op
