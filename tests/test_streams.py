"""Tests for edge-stream batching, symmetrisation and schedules."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.streams import (
    EdgeStream,
    batch_view,
    highest_degree_roots,
    interleaved_schedule,
    symmetrize,
    validate_edges,
)


@pytest.fixture
def edges(rng):
    return np.column_stack([rng.integers(0, 50, 1000),
                            rng.integers(0, 50, 1000)]).astype(np.int64)


class TestBatchView:
    def test_exact_split(self, edges):
        batches = batch_view(edges, 250)
        assert len(batches) == 4
        assert all(b.shape[0] == 250 for b in batches)

    def test_ragged_tail(self, edges):
        batches = batch_view(edges, 300)
        assert [b.shape[0] for b in batches] == [300, 300, 300, 100]

    def test_views_not_copies(self, edges):
        batches = batch_view(edges, 100)
        assert batches[0].base is edges

    def test_bad_batch_size(self, edges):
        with pytest.raises(WorkloadError):
            batch_view(edges, 0)


class TestEdgeStream:
    def test_counts(self, edges):
        s = EdgeStream(edges, 128)
        assert s.n_edges == 1000
        assert s.n_batches == 8

    def test_insert_batches_cover_stream_in_order(self, edges):
        s = EdgeStream(edges, 300)
        got = np.concatenate(list(s.insert_batches()))
        assert (got == edges).all()

    def test_delete_batches_permute_deterministically(self, edges):
        s = EdgeStream(edges, 300)
        a = np.concatenate(list(s.delete_batches(seed=5)))
        b = np.concatenate(list(s.delete_batches(seed=5)))
        assert (a == b).all()
        assert sorted(map(tuple, a.tolist())) == sorted(map(tuple, edges.tolist()))
        assert not (a == edges).all()

    def test_delete_batches_insertion_order(self, edges):
        s = EdgeStream(edges, 400)
        got = np.concatenate(list(s.delete_batches(seed=None)))
        assert (got == edges).all()

    def test_prefix(self, edges):
        s = EdgeStream(edges, 100).prefix(250)
        assert s.n_edges == 250
        assert s.n_batches == 3

    def test_shape_validation(self):
        with pytest.raises(WorkloadError):
            EdgeStream(np.zeros((3, 3), dtype=np.int64), 10)
        with pytest.raises(WorkloadError):
            EdgeStream(np.zeros((3, 2), dtype=np.int64), 0)

    def test_rejects_invalid_ids_at_construction(self, edges):
        bad = edges.astype(np.float64)
        bad[7, 1] = np.nan
        with pytest.raises(WorkloadError, match="non-finite"):
            EdgeStream(bad, 100)
        with pytest.raises(WorkloadError, match="negative"):
            EdgeStream(np.array([[0, 1], [2, -3]]), 100)

    def test_max_vertex_bound(self, edges):
        EdgeStream(edges, 100, max_vertex=50)  # ids are in [0, 50)
        with pytest.raises(WorkloadError, match="outside"):
            EdgeStream(edges, 100, max_vertex=40)

    def test_prefix_inherits_bound(self, edges):
        s = EdgeStream(edges, 100, max_vertex=50).prefix(200)
        assert s.max_vertex == 50


class TestValidateEdges:
    def test_clean_int64_passes_without_copy(self, edges):
        out = validate_edges(edges)
        assert out is edges

    def test_whole_floats_convert(self):
        out = validate_edges(np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert out.dtype == np.int64
        assert out.tolist() == [[1, 2], [3, 4]]

    @pytest.mark.parametrize("bad, pattern", [
        (np.array([[0.0, np.nan]]), "non-finite"),
        (np.array([[0.0, np.inf]]), "non-finite"),
        (np.array([[0.5, 1.0]]), "fractional"),
        (np.array([[-1, 4]]), "negative"),
        (np.array([["a", "b"]]), "numeric"),
    ])
    def test_rejections_are_typed_and_name_the_row(self, bad, pattern):
        with pytest.raises(WorkloadError, match=pattern):
            validate_edges(bad)

    def test_error_names_first_offending_row(self):
        arr = np.array([[0, 1], [2, 3], [4, -9]])
        with pytest.raises(WorkloadError, match="row 2"):
            validate_edges(arr)

    def test_max_vertex_is_exclusive(self):
        validate_edges(np.array([[0, 9]]), max_vertex=10)
        with pytest.raises(WorkloadError, match="outside"):
            validate_edges(np.array([[0, 10]]), max_vertex=10)

    def test_empty_edges_pass(self):
        out = validate_edges(np.empty((0, 2), dtype=np.int64), max_vertex=5)
        assert out.shape == (0, 2)


class TestSymmetrize:
    def test_interleaves_reverse_edges(self):
        out = symmetrize(np.array([[1, 2], [3, 4]]))
        assert out.tolist() == [[1, 2], [2, 1], [3, 4], [4, 3]]

    def test_batch_never_half_symmetric(self):
        """Any even-sized prefix of a symmetrised stream is symmetric."""
        edges = np.array([[0, 1], [2, 3], [4, 5]])
        out = symmetrize(edges)
        for cut in range(0, out.shape[0] + 1, 2):
            prefix = {tuple(e) for e in out[:cut].tolist()}
            assert all((d, s) in prefix for s, d in prefix)


class TestSchedule:
    def test_ratio_4_to_7_over_32_batches(self):
        """The paper's worked example: interception after every 8th batch."""
        sched = interleaved_schedule(32, 4, 7)
        assert sched == [(7, 7), (15, 7), (23, 7), (31, 7)]

    def test_more_interceptions_than_batches_clamped(self):
        sched = interleaved_schedule(3, 10, 1)
        assert len(sched) == 3

    def test_bad_arguments(self):
        with pytest.raises(WorkloadError):
            interleaved_schedule(0, 1, 1)
        with pytest.raises(WorkloadError):
            interleaved_schedule(4, 0, 1)


class TestRoots:
    def test_highest_degree_roots(self):
        edges = np.array([[1, 0]] * 5 + [[2, 0]] * 3 + [[3, 0]] * 4)
        roots = highest_degree_roots(edges, k=2)
        assert roots.tolist() == [1, 3]

    def test_ties_break_to_smaller_id(self):
        edges = np.array([[5, 0], [2, 0], [5, 1], [2, 1]])
        roots = highest_degree_roots(edges, k=1)
        assert roots.tolist() == [2]

    def test_k_larger_than_sources(self):
        edges = np.array([[1, 0], [2, 0]])
        assert highest_degree_roots(edges, k=20).shape[0] == 2

    def test_empty_raises(self):
        with pytest.raises(WorkloadError):
            highest_degree_roots(np.empty((0, 2), dtype=np.int64))
