"""Tests for the Fig. 2 interface-component pipeline (units.py).

The traced driver must be behaviourally identical to the plain facade and
must exercise the documented unit sequence.
"""

import numpy as np
import pytest

from repro import GraphTinker, GTConfig
from repro.core.units import GraphTinkerUnits


@pytest.fixture
def gt(small_config):
    return GraphTinker(small_config)


class TestTracedInsertEquivalence:
    def test_matches_plain_facade_on_random_stream(self, small_config, rng):
        gt_a = GraphTinker(small_config)
        gt_b = GraphTinker(small_config)
        units = GraphTinkerUnits(gt_b)
        src = rng.integers(0, 30, 2000)
        dst = rng.integers(0, 90, 2000)
        w = rng.random(2000)
        for s, d, x in zip(src.tolist(), dst.tolist(), w.tolist()):
            new_a = gt_a.insert_edge(s, d, x)
            new_b, _ = units.insert_edge_traced(s, d, x)
            assert new_a == new_b
        assert gt_a.n_edges == gt_b.n_edges
        gt_b.check_invariants()
        ea = sorted(gt_a.edges())
        eb = sorted(gt_b.edges())
        assert ea == eb

    def test_duplicate_weight_update_traced(self, gt):
        units = GraphTinkerUnits(gt)
        units.insert_edge_traced(1, 2, 1.0)
        is_new, trace = units.insert_edge_traced(1, 2, 9.0)
        assert not is_new
        assert gt.edge_weight(1, 2) == 9.0
        assert any(u == "find-edge" and "hit" in d for u, d in trace.steps)


class TestTraceContents:
    def test_fresh_insert_unit_sequence(self, gt):
        units = GraphTinkerUnits(gt)
        _, trace = units.insert_edge_traced(5, 7)
        used = trace.units_used()
        assert used[0] == "sgh"
        assert "load" in used
        assert "insert-edge" in used
        assert "writeback" in used

    def test_sgh_bypass_recorded(self):
        gt = GraphTinker(GTConfig(pagewidth=16, subblock=4, workblock=2,
                                  enable_sgh=False))
        units = GraphTinkerUnits(gt)
        _, trace = units.insert_edge_traced(3, 4)
        assert ("sgh", "bypassed") in trace.steps

    def test_inference_unit_on_congestion(self, gt):
        units = GraphTinkerUnits(gt)
        # saturate vertex 0 so a branch-out (inference decision) occurs
        traces = [units.insert_edge_traced(0, d)[1] for d in range(200)]
        assert any(
            any(u == "inference" for u, _ in t.steps) for t in traces
        )

    def test_cal_copy_recorded(self, gt):
        units = GraphTinkerUnits(gt)
        _, trace = units.insert_edge_traced(2, 9)
        assert any("CAL copy" in d for _, d in trace.steps)


class TestTracedDelete:
    def test_matches_plain_facade(self, small_config, rng):
        gt_a = GraphTinker(small_config)
        gt_b = GraphTinker(small_config)
        units = GraphTinkerUnits(gt_b)
        edges = np.column_stack([rng.integers(0, 25, 800), rng.integers(0, 60, 800)])
        gt_a.insert_batch(edges)
        gt_b.insert_batch(edges)
        for s, d in edges[::2].tolist():
            deleted_a = gt_a.delete_edge(s, d)
            deleted_b, _ = units.delete_edge_traced(s, d)
            assert deleted_a == deleted_b
        assert sorted(gt_a.edges()) == sorted(gt_b.edges())
        gt_b.check_invariants()

    def test_trace_records_tombstone_and_cal(self, gt):
        units = GraphTinkerUnits(gt)
        units.insert_edge_traced(1, 2)
        deleted, trace = units.delete_edge_traced(1, 2)
        assert deleted
        assert ("writeback", "tombstone") in trace.steps
        assert any("CAL" in d for u, d in trace.steps if u == "writeback")

    def test_unknown_vertex_short_circuits_at_sgh(self, gt):
        units = GraphTinkerUnits(gt)
        deleted, trace = units.delete_edge_traced(99, 1)
        assert not deleted
        assert trace.steps == [("sgh", "99 unknown")]

    def test_miss_recorded(self, gt):
        units = GraphTinkerUnits(gt)
        units.insert_edge_traced(1, 2)
        deleted, trace = units.delete_edge_traced(1, 3)
        assert not deleted
        assert ("find-edge", "miss (all generations)") in trace.steps

    def test_compact_mode_traced(self, rng):
        cfg = GTConfig(pagewidth=16, subblock=4, workblock=2,
                       compact_on_delete=True, cal_group_width=4, cal_block_size=4)
        gt = GraphTinker(cfg)
        units = GraphTinkerUnits(gt)
        for d in range(30):
            gt.insert_edge(0, d)
        deleted, trace = units.delete_edge_traced(0, 5)
        assert deleted
        assert any("compact-delete" in d for _, d in trace.steps)
        gt.check_invariants()
