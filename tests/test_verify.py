"""Tests for the store integrity checker (fsck) and self-healing repair.

Two properties anchor the suite:

* **Zero false positives** — a store built purely through the public API
  must audit clean, whatever the geometry, feature flags, seed, or churn
  history.  A checker that cries wolf is worse than no checker.
* **Detect and heal** — every corruption class the fault injector can
  produce must be flagged, and ``repair`` must bring the store back to a
  clean audit with the reference edge set intact (the CAL's redundant
  copies make lossless healing possible).
"""

import numpy as np
import pytest

import repro.obs as obs
from repro.core.config import GTConfig
from repro.core.graphtinker import GraphTinker
from repro.core.verify import (
    RepairReport,
    VerifyReport,
    repair_graph,
    verify_graph,
)
from repro.service.faults import CorruptionError, StoreCorruptor
from repro.workloads import rmat_edges

CONFIGS = {
    "default": GTConfig(pagewidth=16, subblock=4, workblock=2,
                        initial_vertices=2, cal_group_width=8,
                        cal_block_size=8),
    "no_cal": GTConfig(pagewidth=16, subblock=4, workblock=2,
                       initial_vertices=2, enable_cal=False),
    "no_sgh": GTConfig(pagewidth=16, subblock=4, workblock=2,
                       initial_vertices=2, enable_sgh=False,
                       cal_group_width=8, cal_block_size=8),
    "no_rhh": GTConfig(pagewidth=16, subblock=4, workblock=2,
                       initial_vertices=2, enable_rhh=False,
                       cal_group_width=8, cal_block_size=8),
    "compact": GTConfig(pagewidth=16, subblock=4, workblock=2,
                        initial_vertices=2, compact_on_delete=True,
                        cal_group_width=8, cal_block_size=8),
}


def build(config: GTConfig, seed: int, n: int = 1500,
          churn: bool = True) -> GraphTinker:
    """A store with real history: inserts, deletes, re-inserts."""
    gt = GraphTinker(config)
    edges = rmat_edges(8, n, seed=seed)
    gt.insert_batch(edges)
    if churn:
        rng = np.random.default_rng(seed)
        doomed = edges[rng.permutation(edges.shape[0])[: n // 4]]
        gt.delete_batch(doomed)
        gt.insert_batch(edges[: n // 8])
    return gt


def edge_set(gt):
    src, dst, _ = gt.analytics_edges()
    return set(zip(src.tolist(), dst.tolist()))


class TestNoFalsePositives:
    @pytest.mark.parametrize("name", sorted(CONFIGS))
    @pytest.mark.parametrize("seed", [0, 7, 42])
    def test_churned_store_audits_clean(self, name, seed):
        gt = build(CONFIGS[name], seed)
        report = verify_graph(gt, level="full")
        assert report.ok, report.summary()
        assert verify_graph(gt, level="quick").ok

    def test_empty_store_audits_clean(self):
        report = verify_graph(GraphTinker(CONFIGS["default"]))
        assert report.ok
        assert report.n_edges == 0

    def test_report_counts_match_store(self):
        gt = build(CONFIGS["default"], 3, churn=False)
        report = verify_graph(gt)
        assert report.n_edges == gt.n_edges
        assert report.n_vertices == gt.n_vertices

    def test_fsck_leaves_access_stats_untouched(self):
        gt = build(CONFIGS["default"], 1)
        before = gt.stats.as_dict()
        verify_graph(gt, level="full")
        verify_graph(gt, level="quick")
        assert gt.stats.as_dict() == before

    def test_facade_dispatch(self):
        gt = build(CONFIGS["default"], 2, churn=False)
        assert isinstance(gt.fsck(), VerifyReport)
        assert isinstance(gt.fsck(level="quick"), VerifyReport)
        assert isinstance(gt.fsck(repair=True), RepairReport)


class TestCorruptionClasses:
    """Every injectable corruption: detected at full level, then healed
    back to a clean audit with the reference edge set intact."""

    @pytest.mark.parametrize("kind", StoreCorruptor.KINDS)
    def test_detect_and_repair(self, kind):
        gt = build(CONFIGS["default"], 11)
        reference = edge_set(gt)
        n_ref = gt.n_edges
        StoreCorruptor(gt, seed=5).corrupt(kind)

        report = verify_graph(gt, level="full")
        assert not report.ok, f"{kind} went undetected"

        repair = repair_graph(gt, report)
        assert repair.ok, (f"{kind} not healed: "
                           f"{repair.final.summary()}")
        assert edge_set(gt) == reference
        assert gt.n_edges == n_ref

    def test_degree_drift_visible_at_quick_level(self):
        gt = build(CONFIGS["default"], 11)
        StoreCorruptor(gt, seed=5).corrupt("degree")
        report = verify_graph(gt, level="quick")
        assert not report.ok
        assert "degree-mismatch" in report.by_kind()

    def test_repair_is_idempotent(self):
        gt = build(CONFIGS["default"], 13)
        StoreCorruptor(gt, seed=1).corrupt("bitflip")
        assert repair_graph(gt).ok
        second = repair_graph(gt)
        assert second.ok
        assert not second.rebuilt_vertices
        assert not second.recounted_vertices

    def test_unviable_kind_raises_typed_error(self):
        gt = build(CONFIGS["no_cal"], 0, n=200, churn=False)
        with pytest.raises(CorruptionError):
            StoreCorruptor(gt, seed=0).corrupt("cal-src")

    def test_compact_store_repairs_via_rebuild(self):
        # A one-bit dst flip that happens to keep hash placement valid is
        # indistinguishable from a flipped CAL copy (both stories are
        # self-consistent), so repair guarantees a clean audit and a
        # preserved edge count — not always the original bit.
        gt = build(CONFIGS["compact"], 17)
        n_ref = gt.n_edges
        StoreCorruptor(gt, seed=3).corrupt("bitflip")
        repair = repair_graph(gt)
        assert repair.ok, repair.final.summary()
        assert gt.n_edges == n_ref


class TestRandomizedRepair:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_multiple_corruptions_heal_to_reference(self, seed):
        gt = build(CONFIGS["default"], seed + 100)
        reference = edge_set(gt)
        injected = StoreCorruptor(gt, seed=seed).corrupt_random(4)
        assert injected, "injector found no targets"

        report = verify_graph(gt, level="full")
        assert not report.ok

        repair = repair_graph(gt, report)
        assert repair.ok, (f"seed {seed}, injected "
                           f"{[i.kind for i in injected]}: "
                           f"{repair.final.summary()}")
        assert edge_set(gt) == reference

    def test_repaired_store_still_functions(self):
        gt = build(CONFIGS["default"], 23)
        StoreCorruptor(gt, seed=9).corrupt_random(3)
        assert repair_graph(gt).ok
        extra = rmat_edges(8, 300, seed=99)
        gt.insert_batch(extra)
        assert verify_graph(gt).ok


class TestObservability:
    def test_fsck_publishes_metrics(self):
        registry = obs.MetricsRegistry()
        prior = obs.set_registry(registry)
        try:
            with obs.enabled_scope(True):
                gt = build(CONFIGS["default"], 31, n=400, churn=False)
                verify_graph(gt)
        finally:
            obs.set_registry(prior)
        assert "verify.runs" in registry
        assert "verify.last_violations" in registry
