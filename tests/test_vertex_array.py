"""Unit tests for the VertexPropertyArray."""

import numpy as np
import pytest

from repro.core.vertex_array import FLAG_ACTIVE, FLAG_INCONSISTENT, VertexPropertyArray


class TestGrowth:
    def test_ensure_extends_count(self):
        vpa = VertexPropertyArray(2)
        vpa.ensure(10)
        assert len(vpa) == 11

    def test_growth_preserves_state(self):
        vpa = VertexPropertyArray(2)
        vpa.add_degree(0, 3)
        vpa.ensure(100)
        assert vpa.degree(0) == 3
        assert np.isinf(vpa.values[50])

    def test_new_slots_initialised(self):
        vpa = VertexPropertyArray(2)
        vpa.ensure(5)
        assert (vpa.degrees == 0).all()
        assert np.isinf(vpa.values).all()
        assert (vpa.flags == 0).all()


class TestDegrees:
    def test_add_degree(self):
        vpa = VertexPropertyArray()
        vpa.add_degree(3, 2)
        vpa.add_degree(3, -1)
        assert vpa.degree(3) == 1

    def test_degree_of_unknown_vertex(self):
        assert VertexPropertyArray().degree(99) == 0


class TestValues:
    def test_set_values_roundtrip(self):
        vpa = VertexPropertyArray()
        vpa.ensure(3)
        vpa.set_values(np.array([1.0, 2.0, 3.0, 4.0]))
        assert vpa.values.tolist() == [1.0, 2.0, 3.0, 4.0]

    def test_set_values_length_mismatch(self):
        vpa = VertexPropertyArray()
        vpa.ensure(2)
        with pytest.raises(ValueError):
            vpa.set_values(np.zeros(5))

    def test_reset_values(self):
        vpa = VertexPropertyArray()
        vpa.ensure(2)
        vpa.set_values(np.array([1.0, 2.0, 3.0]))
        vpa.reset_values(0.0)
        assert (vpa.values == 0.0).all()

    def test_values_view_is_writable(self):
        vpa = VertexPropertyArray()
        vpa.ensure(1)
        vpa.values[0] = 5.0
        assert vpa.values[0] == 5.0


class TestFlags:
    def test_set_and_query_flag(self):
        vpa = VertexPropertyArray()
        vpa.set_flag(np.array([1, 3]), FLAG_ACTIVE)
        assert vpa.flagged(FLAG_ACTIVE).tolist() == [1, 3]

    def test_flags_are_independent_bits(self):
        vpa = VertexPropertyArray()
        vpa.set_flag(np.array([0]), FLAG_ACTIVE)
        vpa.set_flag(np.array([0, 1]), FLAG_INCONSISTENT)
        assert vpa.flagged(FLAG_ACTIVE).tolist() == [0]
        assert vpa.flagged(FLAG_INCONSISTENT).tolist() == [0, 1]

    def test_clear_flag(self):
        vpa = VertexPropertyArray()
        vpa.set_flag(np.array([0, 1]), FLAG_ACTIVE)
        vpa.set_flag(np.array([1]), FLAG_INCONSISTENT)
        vpa.clear_flag(FLAG_ACTIVE)
        assert vpa.flagged(FLAG_ACTIVE).size == 0
        assert vpa.flagged(FLAG_INCONSISTENT).tolist() == [1]

    def test_set_flag_grows(self):
        vpa = VertexPropertyArray(2)
        vpa.set_flag(np.array([50]), FLAG_ACTIVE)
        assert len(vpa) == 51

    def test_set_flag_empty_array(self):
        vpa = VertexPropertyArray()
        vpa.set_flag(np.empty(0, dtype=np.int64), FLAG_ACTIVE)
        assert len(vpa) == 0
