"""Tests for whole-vertex deletion across both stores."""

import numpy as np
import pytest

from repro import GraphTinker, GTConfig, StingerConfig
from repro.stinger import Stinger
from tests.reference import ReferenceGraph, assert_store_matches


@pytest.fixture(params=["gt", "gt_compact", "stinger"])
def store(request):
    if request.param == "gt":
        return GraphTinker(GTConfig(pagewidth=16, subblock=4, workblock=2))
    if request.param == "gt_compact":
        return GraphTinker(GTConfig(pagewidth=16, subblock=4, workblock=2,
                                    compact_on_delete=True))
    return Stinger(StingerConfig(edgeblock_size=4))


class TestDeleteVertex:
    def test_removes_all_out_edges(self, store):
        for d in range(40):
            store.insert_edge(7, d)
        store.insert_edge(8, 1)
        assert store.delete_vertex(7) == 40
        assert store.degree(7) == 0
        assert store.n_edges == 1
        assert store.has_edge(8, 1)
        store.check_invariants()

    def test_unknown_vertex(self, store):
        assert store.delete_vertex(99) == 0

    def test_vertex_with_no_edges_after_deletion(self, store):
        store.insert_edge(3, 4)
        store.delete_edge(3, 4)
        assert store.delete_vertex(3) == 0

    def test_in_edges_untouched(self, store):
        store.insert_edge(1, 2)
        store.insert_edge(2, 1)
        store.delete_vertex(1)
        assert store.has_edge(2, 1)
        assert not store.has_edge(1, 2)

    def test_vertex_reusable_after_deletion(self, store):
        for d in range(20):
            store.insert_edge(5, d)
        store.delete_vertex(5)
        assert store.insert_edge(5, 100)
        assert store.degree(5) == 1
        assert store.has_edge(5, 100)
        store.check_invariants()

    def test_matches_reference_under_churn(self, store, rng):
        ref = ReferenceGraph()
        for i in range(2500):
            roll = rng.random()
            s = int(rng.integers(0, 12))
            d = int(rng.integers(0, 50))
            if roll < 0.7:
                assert store.insert_edge(s, d) == ref.insert_edge(s, d)
            elif roll < 0.9:
                assert store.delete_edge(s, d) == ref.delete_edge(s, d)
            else:
                expected = ref.degree(s)
                ref.adj.pop(s, None)
                assert store.delete_vertex(s) == expected
        store.check_invariants()
        assert_store_matches(store, ref)


class TestGraphTinkerSpecific:
    def test_cal_copies_invalidated(self):
        gt = GraphTinker(GTConfig(pagewidth=16, subblock=4, workblock=2))
        for d in range(30):
            gt.insert_edge(0, d)
        gt.insert_edge(1, 5)
        gt.delete_vertex(0)
        assert gt.cal.n_edges == 1
        src, dst, _ = gt.analytics_edges()
        assert (src.tolist(), dst.tolist()) == ([1], [5])

    def test_compact_mode_frees_blocks(self):
        gt = GraphTinker(GTConfig(pagewidth=16, subblock=4, workblock=2,
                                  compact_on_delete=True))
        for d in range(300):
            gt.insert_edge(0, d)
        assert gt.eba.overflow.n_used > 0
        gt.delete_vertex(0)
        assert gt.eba.overflow.n_used == 0
