"""Tests for the write-ahead log: format, rotation, torn tails, corruption."""

import struct

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.service.wal import (
    OP_DELETE,
    OP_INSERT,
    SEGMENT_MAGIC,
    WriteAheadLog,
    iter_records,
    list_segments,
    prune_segments,
    scan_segment,
    truncate_torn_tail,
)


def edges_of(n, seed=0):
    rng = np.random.default_rng(seed)
    return np.column_stack([rng.integers(0, 50, n), rng.integers(0, 99, n)])


class TestRoundtrip:
    def test_insert_and_delete_records(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            e1, e2 = edges_of(10, 1), edges_of(4, 2)
            w1 = np.linspace(0.5, 2.0, 10)
            assert wal.append(OP_INSERT, e1, w1) == 1
            assert wal.append(OP_DELETE, e2) == 2
        records = list(iter_records(tmp_path))
        assert [r.seq for r in records] == [1, 2]
        assert [r.op for r in records] == [OP_INSERT, OP_DELETE]
        np.testing.assert_array_equal(records[0].edges, e1)
        np.testing.assert_allclose(records[0].weights, w1)
        np.testing.assert_array_equal(records[1].edges, e2)
        assert records[0].cum_edges == 10
        assert records[1].cum_edges == 14

    def test_default_weights_are_ones(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(OP_INSERT, edges_of(5))
        (rec,) = iter_records(tmp_path)
        np.testing.assert_array_equal(rec.weights, np.ones(5))

    def test_reopen_resumes_numbering(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(OP_INSERT, edges_of(3))
        with WriteAheadLog(tmp_path) as wal:
            assert wal.append(OP_INSERT, edges_of(2)) == 2
            assert wal.cum_edges == 5
        assert [r.seq for r in iter_records(tmp_path)] == [1, 2]

    def test_min_last_seq_rules_after_full_prune(self, tmp_path):
        wal = WriteAheadLog(tmp_path, min_last_seq=7, min_cum_edges=100)
        assert wal.next_seq == 8
        wal.append(OP_INSERT, edges_of(3))
        wal.close()
        (rec,) = iter_records(tmp_path)
        assert rec.seq == 8
        assert rec.cum_edges == 103

    def test_rejects_bad_shapes_and_policies(self, tmp_path):
        with pytest.raises(ServiceError):
            WriteAheadLog(tmp_path, sync="sometimes")
        with WriteAheadLog(tmp_path) as wal:
            with pytest.raises(ServiceError):
                wal.append(OP_INSERT, np.arange(6))


class TestRotation:
    def test_rotates_into_multiple_segments(self, tmp_path):
        with WriteAheadLog(tmp_path, segment_bytes=256) as wal:
            for i in range(6):
                wal.append(OP_INSERT, edges_of(8, i))
            assert wal.n_rotations >= 2
        segments = list_segments(tmp_path)
        assert len(segments) >= 3
        assert [r.seq for r in iter_records(tmp_path)] == list(range(1, 7))

    def test_prune_keeps_active_segment(self, tmp_path):
        with WriteAheadLog(tmp_path, segment_bytes=256) as wal:
            for i in range(6):
                wal.append(OP_INSERT, edges_of(8, i))
        n_before = len(list_segments(tmp_path))
        prune_segments(tmp_path, upto_seq=6)
        remaining = list_segments(tmp_path)
        assert len(remaining) == 1
        assert n_before > 1
        # Records past the prune point still replay.
        tail = [r.seq for r in iter_records(tmp_path)]
        assert tail and tail[-1] == 6

    def test_prune_respects_upto_seq(self, tmp_path):
        with WriteAheadLog(tmp_path, segment_bytes=256) as wal:
            for i in range(6):
                wal.append(OP_INSERT, edges_of(8, i))
        prune_segments(tmp_path, upto_seq=0)
        assert [r.seq for r in iter_records(tmp_path)] == list(range(1, 7))


class TestTornTail:
    def _write_two(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(OP_INSERT, edges_of(6, 1))
            wal.append(OP_INSERT, edges_of(6, 2))
        (segment,) = list_segments(tmp_path)
        return segment

    def test_torn_final_record_is_dropped(self, tmp_path):
        segment = self._write_two(tmp_path)
        data = segment.read_bytes()
        segment.write_bytes(data[:-20])  # tear the second record
        records, torn = scan_segment(segment, tolerate_torn_tail=True)
        assert [r.seq for r in records] == [1]
        assert torn is not None
        assert [r.seq for r in iter_records(tmp_path)] == [1]

    def test_torn_header_is_dropped(self, tmp_path):
        segment = self._write_two(tmp_path)
        with open(segment, "ab") as f:
            f.write(b"\x01\x02\x03")  # 3 bytes of a would-be header
        assert [r.seq for r in iter_records(tmp_path)] == [1, 2]

    def test_truncate_torn_tail_makes_log_clean(self, tmp_path):
        segment = self._write_two(tmp_path)
        data = segment.read_bytes()
        segment.write_bytes(data[:-20])
        offset = truncate_torn_tail(tmp_path)
        assert offset is not None
        # Second pass: nothing torn, scan without tolerance succeeds.
        records, torn = scan_segment(segment, tolerate_torn_tail=False)
        assert [r.seq for r in records] == [1]
        assert torn is None
        assert truncate_torn_tail(tmp_path) is None  # idempotent

    def test_torn_magic_of_fresh_segment(self, tmp_path):
        (tmp_path / "wal-00000000000000000001.seg").write_bytes(SEGMENT_MAGIC[:3])
        assert list(iter_records(tmp_path)) == []
        assert truncate_torn_tail(tmp_path) == 0
        assert list_segments(tmp_path) == []

    def test_empty_segment_is_fine(self, tmp_path):
        (tmp_path / "wal-00000000000000000001.seg").write_bytes(SEGMENT_MAGIC)
        assert list(iter_records(tmp_path)) == []
        records, torn = scan_segment(
            tmp_path / "wal-00000000000000000001.seg", tolerate_torn_tail=False)
        assert records == [] and torn is None

    def test_empty_directory(self, tmp_path):
        assert list(iter_records(tmp_path)) == []
        assert truncate_torn_tail(tmp_path) is None

    def test_writer_reopen_truncates_tear(self, tmp_path):
        segment = self._write_two(tmp_path)
        data = segment.read_bytes()
        segment.write_bytes(data[:-20])
        with WriteAheadLog(tmp_path) as wal:
            assert wal.last_seq == 1
            wal.append(OP_INSERT, edges_of(2, 3))
        assert [r.seq for r in iter_records(tmp_path)] == [1, 2]


class TestCorruption:
    def test_crc_mismatch_mid_segment_raises(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(OP_INSERT, edges_of(6, 1))
            wal.append(OP_INSERT, edges_of(6, 2))
        (segment,) = list_segments(tmp_path)
        data = bytearray(segment.read_bytes())
        # Flip a payload byte of the FIRST record (mid-segment damage).
        data[len(SEGMENT_MAGIC) + 40] ^= 0xFF
        segment.write_bytes(bytes(data))
        with pytest.raises(ServiceError, match="CRC mismatch mid-segment"):
            list(iter_records(tmp_path))
        # Even tolerant single-segment scans refuse mid-segment damage.
        with pytest.raises(ServiceError):
            scan_segment(segment, tolerate_torn_tail=True)

    def test_crc_mismatch_in_final_record_is_torn(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(OP_INSERT, edges_of(6, 1))
            wal.append(OP_INSERT, edges_of(6, 2))
        (segment,) = list_segments(tmp_path)
        data = bytearray(segment.read_bytes())
        data[-5] ^= 0xFF
        segment.write_bytes(bytes(data))
        assert [r.seq for r in iter_records(tmp_path)] == [1]

    def test_bad_magic_raises(self, tmp_path):
        (tmp_path / "wal-00000000000000000001.seg").write_bytes(
            b"NOTAWAL!" + b"\x00" * 64)
        with pytest.raises(ServiceError, match="bad magic"):
            list(iter_records(tmp_path))

    def test_sequence_gap_raises(self, tmp_path):
        with WriteAheadLog(tmp_path, segment_bytes=64) as wal:
            for i in range(3):
                wal.append(OP_INSERT, edges_of(4, i))  # one record per segment
        segments = list_segments(tmp_path)
        assert len(segments) == 3
        segments[1].unlink()  # lose sequence 2
        with pytest.raises(ServiceError, match="sequence gap"):
            list(iter_records(tmp_path))

    def test_non_final_segment_with_tear_raises(self, tmp_path):
        with WriteAheadLog(tmp_path, segment_bytes=64) as wal:
            wal.append(OP_INSERT, edges_of(4, 1))
            wal.append(OP_INSERT, edges_of(4, 2))
        first, second = list_segments(tmp_path)
        first.write_bytes(first.read_bytes()[:-10])
        with pytest.raises(ServiceError):
            list(iter_records(tmp_path))
