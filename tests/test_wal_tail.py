"""Tests for the WAL tailer: cursor binding, rotation, torn tails, pruning.

:class:`~repro.service.tail.WalTailer` is the replication stream's read
side — it must follow a *live* segmented log that rotates, gets pruned
by checkpoints, and can carry a torn tail after a crash.  These tests
drive it against a real :class:`~repro.service.wal.WriteAheadLog` on
disk; tiny ``segment_bytes`` values force rotation and pruning with a
handful of records.
"""

import numpy as np
import pytest

from repro.errors import CursorGapError, ServiceError
from repro.service.checkpoint import CheckpointManager
from repro.service.tail import WalTailer, segment_first_seq
from repro.service.wal import (
    OP_INSERT,
    WriteAheadLog,
    list_segments,
)

#: Small enough that every few single-edge records rotate the segment.
TINY_SEGMENT = 256


def append_n(wal: WriteAheadLog, n: int, start: int = 0) -> None:
    """Append ``n`` single-edge insert records (one edge per record)."""
    for i in range(n):
        wal.append(OP_INSERT, np.array([[start + i, start + i + 1]],
                                       dtype=np.int64))


def drain(tailer: WalTailer, max_polls: int = 100) -> list:
    """Poll until a poll comes back empty; return all records."""
    out = []
    for _ in range(max_polls):
        batch = tailer.poll()
        if not batch:
            return out
        out.extend(batch)
    raise AssertionError("tailer never drained")


class TestBasicTailing:
    def test_reads_all_records_in_order(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            append_n(wal, 10)
            tailer = WalTailer(tmp_path)
            records = drain(tailer)
            assert [r.seq for r in records] == list(range(1, 11))
            assert tailer.position == {"seq": wal.last_seq,
                                       "cum_edges": wal.cum_edges}

    def test_follows_live_appends(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            append_n(wal, 4)
            tailer = WalTailer(tmp_path)
            assert len(drain(tailer)) == 4
            assert tailer.poll() == []  # caught up: poll never blocks
            append_n(wal, 3, start=100)
            fresh = drain(tailer)
            assert [r.seq for r in fresh] == [5, 6, 7]

    def test_mid_log_cursor_skips_applied_prefix(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            append_n(wal, 12)
            cursor_cum = 5  # one edge per record: cum_edges == seq
            tailer = WalTailer(tmp_path, after_seq=5, cum_edges=cursor_cum)
            records = drain(tailer)
            assert [r.seq for r in records] == list(range(6, 13))
            # cum_edges parity is preserved record by record
            for r in records:
                assert r.cum_edges == r.seq

    def test_records_round_trip_payloads(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            edges = np.array([[1, 2], [3, 4], [5, 6]], dtype=np.int64)
            weights = np.array([0.5, 1.5, 2.5])
            wal.append(OP_INSERT, edges, weights)
            (record,) = drain(WalTailer(tmp_path))
            np.testing.assert_array_equal(record.edges, edges)
            np.testing.assert_allclose(record.weights, weights)


class TestRotation:
    def test_tails_across_segment_rotation(self, tmp_path):
        with WriteAheadLog(tmp_path, segment_bytes=TINY_SEGMENT) as wal:
            append_n(wal, 40)
            assert len(list_segments(tmp_path)) > 2  # rotation happened
            records = drain(WalTailer(tmp_path))
            assert [r.seq for r in records] == list(range(1, 41))

    def test_rotation_mid_tail_is_followed(self, tmp_path):
        """Records appended *after* the tailer reached a clean EOF land
        in later segments; the tailer must hop segments to find them."""
        with WriteAheadLog(tmp_path, segment_bytes=TINY_SEGMENT) as wal:
            append_n(wal, 3)
            tailer = WalTailer(tmp_path)
            assert len(drain(tailer)) == 3
            append_n(wal, 30, start=50)  # forces several rotations
            assert [r.seq for r in drain(tailer)] == list(range(4, 34))

    def test_cursor_binds_inside_later_segment(self, tmp_path):
        with WriteAheadLog(tmp_path, segment_bytes=TINY_SEGMENT) as wal:
            append_n(wal, 30)
            segments = list_segments(tmp_path)
            # pick a cursor in the middle of the last segment
            first = segment_first_seq(segments[-1])
            cursor = first + 1
            tailer = WalTailer(tmp_path, after_seq=cursor, cum_edges=cursor)
            assert [r.seq for r in tailer.poll()][0] == cursor + 1


class TestPrunedCursor:
    def _pruned_log(self, tmp_path, n: int = 40):
        """A rotated log checkpoint-pruned so early segments are gone."""
        from repro.core.graphtinker import GraphTinker

        wal = WriteAheadLog(tmp_path, segment_bytes=TINY_SEGMENT)
        append_n(wal, n)
        store = GraphTinker()
        CheckpointManager(tmp_path, keep=1).write(
            store, wal.last_seq, wal.cum_edges)
        return wal

    def test_pruned_cursor_raises_typed_gap(self, tmp_path):
        wal = self._pruned_log(tmp_path)
        surviving = segment_first_seq(list_segments(tmp_path)[0])
        assert surviving > 1  # pruning actually happened
        with pytest.raises(CursorGapError):
            WalTailer(tmp_path, after_seq=1, cum_edges=1)
        wal.close()

    def test_cursor_at_surviving_segment_still_works(self, tmp_path):
        wal = self._pruned_log(tmp_path)
        first = segment_first_seq(list_segments(tmp_path)[0])
        tailer = WalTailer(tmp_path, after_seq=first, cum_edges=first)
        records = drain(tailer)
        assert records[0].seq == first + 1
        assert records[-1].seq == wal.last_seq
        wal.close()

    def test_gap_error_is_replication_error(self, tmp_path):
        from repro.errors import ReplicationError

        self._pruned_log(tmp_path).close()
        with pytest.raises(ReplicationError):  # typed for resync routing
            WalTailer(tmp_path, after_seq=1, cum_edges=1)


class TestTornTail:
    def _tear_last_record(self, tmp_path, nbytes: int = 4) -> None:
        segment = list_segments(tmp_path)[-1]
        data = segment.read_bytes()
        segment.write_bytes(data[:-nbytes])

    def test_torn_tail_is_pending_not_fatal(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        append_n(wal, 5)
        wal.close()
        self._tear_last_record(tmp_path)
        tailer = WalTailer(tmp_path)
        assert [r.seq for r in drain(tailer)] == [1, 2, 3, 4]
        assert tailer.poll() == []  # still pending, still not fatal

    def test_writer_restart_after_torn_tail_continues_stream(self, tmp_path):
        """The live-subscriber crash story: a writer dies mid-append,
        restarts (recovery truncates the torn record), and re-appends.
        A tailer that watched the torn bytes must pick up the rewritten
        record without error or duplication."""
        wal = WriteAheadLog(tmp_path)
        append_n(wal, 5)
        wal.close()
        self._tear_last_record(tmp_path)
        tailer = WalTailer(tmp_path)
        assert len(drain(tailer)) == 4  # seq 5 torn away

        # writer restart: recovery truncates the tail, seq 5 is reused
        wal = WriteAheadLog(tmp_path)
        assert wal.last_seq == 4
        append_n(wal, 2, start=200)
        records = drain(tailer)
        assert [r.seq for r in records] == [5, 6]
        np.testing.assert_array_equal(records[0].edges,
                                      [[200, 201]])
        wal.close()

    def test_mid_log_corruption_is_fatal(self, tmp_path):
        """Corruption *followed by more data* is damage, not a torn
        tail — the tailer must refuse to resynchronize past it."""
        wal = WriteAheadLog(tmp_path)
        append_n(wal, 5)
        wal.close()
        segment = list_segments(tmp_path)[-1]
        data = bytearray(segment.read_bytes())
        data[len(data) // 2] ^= 0xFF  # flip a bit well before EOF
        segment.write_bytes(bytes(data))
        tailer = WalTailer(tmp_path)
        with pytest.raises(ServiceError):
            drain(tailer)
